// Package cfg builds per-function control-flow graphs with the paper's
// simplifications (§2, §5): loops contribute no back edges (a while loop is
// "treated identically to an if statement"), so every graph is acyclic and
// the checker's single forward pass visits each node once. The package also
// renders graphs in the style of the paper's Figure 6 and provides
// reachability queries used for unreachable-code reporting and the
// no-fixpoint benchmarks (experiment E14).
package cfg

import (
	"fmt"
	"strings"

	"golclint/internal/cast"
	"golclint/internal/ctoken"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	Entry NodeKind = iota
	Exit
	Stmt   // a simple statement (expression, declaration, return, ...)
	Branch // a two-way condition test
	Merge  // a confluence point
)

var kindNames = map[NodeKind]string{
	Entry: "entry", Exit: "exit", Stmt: "stmt", Branch: "branch", Merge: "merge",
}

// String returns the kind name.
func (k NodeKind) String() string { return kindNames[k] }

// Node is one vertex of the control-flow graph.
type Node struct {
	ID    int
	Kind  NodeKind
	Label string // source text or description
	Pos   ctoken.Pos
	Succs []*Node
	Preds []*Node
}

// Graph is the control-flow graph of one function.
type Graph struct {
	FuncName string
	Nodes    []*Node
	Entry    *Node
	Exit     *Node
}

// newNode appends a node to the graph.
func (g *Graph) newNode(kind NodeKind, label string, pos ctoken.Pos) *Node {
	n := &Node{ID: len(g.Nodes) + 1, Kind: kind, Label: label, Pos: pos}
	g.Nodes = append(g.Nodes, n)
	return n
}

// edge links from -> to.
func (g *Graph) edge(from, to *Node) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// builder holds loop/switch context during construction.
type builder struct {
	g          *Graph
	breakTo    []*Node
	continueTo []*Node
}

// Build constructs the acyclic CFG of a function definition.
func Build(f *cast.FuncDef) *Graph {
	g := &Graph{FuncName: f.Name}
	g.Entry = g.newNode(Entry, "Function Entrance", f.Pos())
	g.Exit = g.newNode(Exit, "Function Exit", f.Pos())
	b := &builder{g: g}
	last := b.stmt(g.Entry, f.Body)
	g.edge(last, g.Exit)
	return g
}

// stmt wires the statement s after node cur and returns the node that
// control flows out of (nil if the path ends, e.g. after return).
func (b *builder) stmt(cur *Node, s cast.Stmt) *Node {
	// A nil cur means the path already terminated; nodes are still
	// created (with no incoming edges) so Unreachable can report them.
	g := b.g
	switch v := s.(type) {
	case *cast.Block:
		terminated := false
		for _, item := range v.Items {
			cur = b.stmt(cur, item)
			if cur == nil {
				terminated = true
			}
		}
		if terminated && cur != nil {
			// Dead statements after a terminator do not resurrect the
			// path.
			return nil
		}
		return cur
	case *cast.Empty, *cast.Label, *cast.Case:
		return cur
	case *cast.DeclStmt:
		n := g.newNode(Stmt, declLabel(v), v.P)
		g.edge(cur, n)
		return n
	case *cast.ExprStmt:
		n := g.newNode(Stmt, fmt.Sprintf("%d: %s", v.P.Line, cast.ExprString(v.X)), v.P)
		g.edge(cur, n)
		return n
	case *cast.Return:
		n := g.newNode(Stmt, fmt.Sprintf("%d: return %s", v.P.Line, cast.ExprString(v.X)), v.P)
		g.edge(cur, n)
		g.edge(n, g.Exit)
		return nil
	case *cast.Goto:
		// Forward gotos exit the path in the paper's structured model.
		n := g.newNode(Stmt, fmt.Sprintf("%d: goto %s", v.P.Line, v.Label), v.P)
		g.edge(cur, n)
		g.edge(n, g.Exit)
		return nil
	case *cast.Break:
		if len(b.breakTo) > 0 {
			g.edge(cur, b.breakTo[len(b.breakTo)-1])
		}
		return nil
	case *cast.Continue:
		if len(b.continueTo) > 0 {
			g.edge(cur, b.continueTo[len(b.continueTo)-1])
		}
		return nil
	case *cast.If:
		br := g.newNode(Branch, fmt.Sprintf("%d: if (%s)", v.P.Line, cast.ExprString(v.Cond)), v.P)
		g.edge(cur, br)
		m := g.newNode(Merge, "merge", v.P)
		thenEnd := b.stmt(br, v.Then)
		g.edge(thenEnd, m)
		if v.Else != nil {
			elseEnd := b.stmt(br, v.Else)
			g.edge(elseEnd, m)
		} else {
			g.edge(br, m)
		}
		if len(m.Preds) == 0 {
			return nil
		}
		return m
	case *cast.While:
		// No back edge: the loop body flows forward into the merge, which
		// also receives the zero-iteration path (§5: "The while loop is
		// treated identically to an if statement — there is no back edge").
		br := g.newNode(Branch, fmt.Sprintf("%d: while (%s)", v.P.Line, cast.ExprString(v.Cond)), v.P)
		g.edge(cur, br)
		m := g.newNode(Merge, "merge", v.P)
		b.breakTo = append(b.breakTo, m)
		b.continueTo = append(b.continueTo, m)
		bodyEnd := b.stmt(br, v.Body)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		g.edge(bodyEnd, m)
		g.edge(br, m) // zero-iteration path
		return m
	case *cast.DoWhile:
		m := g.newNode(Merge, "merge", v.P)
		b.breakTo = append(b.breakTo, m)
		b.continueTo = append(b.continueTo, m)
		bodyEnd := b.stmt(cur, v.Body)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		br := g.newNode(Branch, fmt.Sprintf("%d: do-while (%s)", v.P.Line, cast.ExprString(v.Cond)), v.P)
		g.edge(bodyEnd, br)
		g.edge(br, m)
		return m
	case *cast.For:
		if v.Init != nil {
			cur = b.stmt(cur, v.Init)
		}
		label := "for (;;)"
		if v.Cond != nil {
			label = fmt.Sprintf("for (%s)", cast.ExprString(v.Cond))
		}
		br := g.newNode(Branch, fmt.Sprintf("%d: %s", v.P.Line, label), v.P)
		g.edge(cur, br)
		m := g.newNode(Merge, "merge", v.P)
		b.breakTo = append(b.breakTo, m)
		b.continueTo = append(b.continueTo, m)
		bodyEnd := b.stmt(br, v.Body)
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		b.continueTo = b.continueTo[:len(b.continueTo)-1]
		if v.Post != nil && bodyEnd != nil {
			p := g.newNode(Stmt, fmt.Sprintf("%d: %s", v.P.Line, cast.ExprString(v.Post)), v.P)
			g.edge(bodyEnd, p)
			bodyEnd = p
		}
		g.edge(bodyEnd, m)
		if v.Cond != nil {
			g.edge(br, m) // zero-iteration path
		}
		if len(m.Preds) == 0 {
			return nil
		}
		return m
	case *cast.Switch:
		br := g.newNode(Branch, fmt.Sprintf("%d: switch (%s)", v.P.Line, cast.ExprString(v.Tag)), v.P)
		g.edge(cur, br)
		m := g.newNode(Merge, "merge", v.P)
		b.breakTo = append(b.breakTo, m)
		hasDefault := false
		if body, ok := v.Body.(*cast.Block); ok {
			var armEnd *Node
			for _, item := range body.Items {
				if cs, isCase := item.(*cast.Case); isCase {
					if cs.Value == nil {
						hasDefault = true
					}
					armStart := g.newNode(Merge, caseLabel(cs), cs.P)
					g.edge(br, armStart)
					g.edge(armEnd, armStart) // fallthrough
					armEnd = armStart
					continue
				}
				armEnd = b.stmt(armEnd, item)
			}
			g.edge(armEnd, m)
		} else {
			g.edge(b.stmt(br, v.Body), m)
		}
		b.breakTo = b.breakTo[:len(b.breakTo)-1]
		if !hasDefault {
			g.edge(br, m) // no-match path
		}
		if len(m.Preds) == 0 {
			return nil
		}
		return m
	}
	return cur
}

func declLabel(v *cast.DeclStmt) string {
	var names []string
	for _, d := range v.Decls {
		if vd, ok := d.(*cast.VarDecl); ok {
			names = append(names, vd.Name)
		}
	}
	return fmt.Sprintf("%d: decl %s", v.P.Line, strings.Join(names, ", "))
}

func caseLabel(cs *cast.Case) string {
	if cs.Value == nil {
		return "default:"
	}
	return "case " + cast.ExprString(cs.Value) + ":"
}

// IsAcyclic verifies the no-back-edge property (every graph built by this
// package must satisfy it; exposed for property tests).
func (g *Graph) IsAcyclic() bool {
	state := make(map[*Node]int, len(g.Nodes)) // 0 unvisited, 1 on stack, 2 done
	var visit func(n *Node) bool
	visit = func(n *Node) bool {
		switch state[n] {
		case 1:
			return false
		case 2:
			return true
		}
		state[n] = 1
		for _, s := range n.Succs {
			if !visit(s) {
				return false
			}
		}
		state[n] = 2
		return true
	}
	return visit(g.Entry)
}

// Topo returns the nodes in a topological order starting at Entry.
func (g *Graph) Topo() []*Node {
	var order []*Node
	seen := map[*Node]bool{}
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, s := range n.Succs {
			visit(s)
		}
		order = append(order, n)
	}
	visit(g.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Reachable returns the set of nodes reachable from Entry.
func (g *Graph) Reachable() map[*Node]bool {
	seen := map[*Node]bool{}
	stack := []*Node{g.Entry}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.Succs...)
	}
	return seen
}

// Unreachable returns statement nodes not reachable from Entry (dead code).
func (g *Graph) Unreachable() []*Node {
	reach := g.Reachable()
	var out []*Node
	for _, n := range g.Nodes {
		if !reach[n] && (n.Kind == Stmt || n.Kind == Branch) {
			out = append(out, n)
		}
	}
	return out
}

// Dump renders the graph in the style of the paper's Figure 6: numbered
// execution points with their successor lists.
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "control flow graph for %s (no back edges)\n", g.FuncName)
	for _, n := range g.Topo() {
		var succs []string
		for _, s := range n.Succs {
			succs = append(succs, fmt.Sprintf("%d", s.ID))
		}
		label := n.Label
		if label == "" {
			label = n.Kind.String()
		}
		fmt.Fprintf(&b, "  (%d) %-40s -> %s\n", n.ID, label, strings.Join(succs, ", "))
	}
	return b.String()
}
