package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"golclint/internal/testgen"
)

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in   string
		i, n int
	}{
		{"0/1", 0, 1}, {"0/2", 0, 2}, {"3/4", 3, 4}, {"7/8", 7, 8},
	} {
		i, n, err := ParseShard(tc.in)
		if err != nil || i != tc.i || n != tc.n {
			t.Errorf("ParseShard(%q) = %d, %d, %v", tc.in, i, n, err)
		}
	}
	for _, bad := range []string{"", "1", "1/", "/2", "2/2", "-1/2", "0/0", "a/b", "1/2/3"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// The partition is total, disjoint, and stable: every name lands in
// exactly one shard, and the assignment never changes run to run.
func TestShardOfPartitions(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		counts := make([]int, n)
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("mod%04d.c", i)
			s := ShardOf(name, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", name, n, s)
			}
			if s != ShardOf(name, n) {
				t.Fatalf("ShardOf(%q, %d) unstable", name, n)
			}
			counts[s]++
		}
		for s, c := range counts {
			if n > 1 && c == 0 {
				t.Errorf("n=%d: shard %d got no modules", n, s)
			}
		}
	}
}

// writeCorpus materializes a deterministic buggy testgen corpus and
// returns the sorted .c paths plus the include dir.
func writeCorpus(t *testing.T, modules int) []string {
	t.Helper()
	dir := t.TempDir()
	bugs := map[testgen.BugKind]int{}
	for _, k := range testgen.AllBugKinds() {
		bugs[k] = modules / 2
	}
	p := testgen.Generate(testgen.Config{Seed: 7, Modules: modules, FuncsPer: 3, Annotate: true, Bugs: bugs})
	for name, src := range p.AllSources() {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var paths []string
	for name := range p.Files {
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Strings(paths)
	return paths
}

// runShardArgs runs one CLI invocation (flags first, then paths — the
// flag package stops at the first positional argument) and returns stdout
// and the diag-jsonl lines.
func runShardArgs(t *testing.T, flags, paths []string) (string, []string, int) {
	t.Helper()
	jsonl := filepath.Join(t.TempDir(), "diags.jsonl")
	args := append(append([]string{}, flags...), "-diag-jsonl", jsonl)
	args = append(args, paths...)
	var out, errb bytes.Buffer
	code := Run(args, &out, &errb)
	if code > 1 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	b, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(b), "\n"), "\n")
	if len(lines) == 1 && lines[0] == "" {
		lines = nil
	}
	return out.String(), lines, code
}

// Merged shard output must be byte-identical to the single-process run
// (-shard 0/1) at every shard count, cold and warm, including -explain and
// -validate payloads.
func TestShardParity(t *testing.T) {
	paths := writeCorpus(t, 12)

	for _, mode := range [][]string{nil, {"-explain"}, {"-validate"}} {
		name := "plain"
		if len(mode) > 0 {
			name = strings.TrimPrefix(mode[0], "-")
		}
		t.Run(name, func(t *testing.T) {
			cacheDir := t.TempDir()
			base := append([]string{"-cache-dir", cacheDir}, mode...)

			single, singleLines, singleCode := runShardArgs(t, append(append([]string{}, base...), "-shard", "0/1"), paths)
			sortedSingle := append([]string(nil), singleLines...)
			sort.Strings(sortedSingle)

			for _, n := range []int{1, 2, 4, 8} {
				for _, pass := range []string{"cold", "warm"} {
					shardCache := cacheDir // warm: shares the single run's cache
					if pass == "cold" {
						shardCache = t.TempDir()
					}
					var mergedLines []string
					stdoutByShard := make([]string, n)
					exit := 0
					for i := 0; i < n; i++ {
						args := append([]string{"-cache-dir", shardCache}, mode...)
						args = append(args, "-shard", fmt.Sprintf("%d/%d", i, n))
						out, lines, code := runShardArgs(t, args, paths)
						stdoutByShard[i] = out
						mergedLines = append(mergedLines, lines...)
						if code > exit {
							exit = code
						}
					}
					sort.Strings(mergedLines)
					if strings.Join(mergedLines, "\n") != strings.Join(sortedSingle, "\n") {
						t.Fatalf("n=%d %s: merged diag-jsonl differs from single-process run", n, pass)
					}
					if exit != singleCode {
						t.Errorf("n=%d %s: exit %d, single %d", n, pass, exit, singleCode)
					}
					// Concatenating per-shard stdout grouped by module name
					// (recoverable because shards are disjoint) reproduces
					// single-process stdout; with n=1 directly.
					if n == 1 && stdoutByShard[0] != single {
						t.Errorf("n=1 %s: stdout differs from -shard 0/1", pass)
					}
				}
			}
		})
	}
}

// The record Text fields, concatenated in sorted-line order, reproduce the
// single-process stdout byte for byte — the property the merge driver
// relies on to render a whole-corpus report from per-shard streams.
func TestShardJSONLTextReconstructsStdout(t *testing.T) {
	paths := writeCorpus(t, 8)
	single, lines, _ := runShardArgs(t, []string{"-shard", "0/1"}, paths)
	sort.Strings(lines)
	var rebuilt strings.Builder
	for _, ln := range lines {
		var rec DiagRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad record %q: %v", ln, err)
		}
		rebuilt.WriteString(rec.Text)
	}
	if rebuilt.String() != single {
		t.Errorf("reconstructed stdout differs:\n--- rebuilt\n%s\n--- single\n%s", rebuilt.String(), single)
	}
}
