package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"golclint/internal/cpp"
	"golclint/internal/diag"
	"golclint/internal/flags"
	"golclint/internal/library"
	"golclint/internal/obs"
)

// dirIncluder resolves #include files against a list of directories.
type dirIncluder struct {
	dirs []string
}

// Include implements cpp.Includer. A file that exists but cannot be read
// (permissions, I/O) reports that error instead of pretending the file is
// absent — otherwise the builtin-header fallback could silently mask it.
func (d dirIncluder) Include(name string) (string, error) {
	var firstErr error
	for _, dir := range d.dirs {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err == nil {
			return string(b), nil
		}
		if !os.IsNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return "", firstErr
	}
	return "", &cpp.NotFoundError{Name: name}
}

// multiFlag collects repeated -I options.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// Config is one fully parsed golclint invocation. ParseConfig produces it
// from an argument vector; the analysis server also builds one per request
// (via ParseConfig, for exact flag-validation parity with the CLI) and then
// fills the programmatic-only fields below.
type Config struct {
	// Flags is the checker configuration with every -flags toggle and -max
	// applied; never nil after ParseConfig.
	Flags *flags.Flags
	// Paths are the positional source arguments. RunConfig reads them from
	// disk (diagnostics use the base name); the server uses them only as
	// names for supplied sources.
	Paths []string
	// IncDirs are the -I include directories.
	IncDirs []string

	DumpLib  string // -dump-lib
	LoadLib  string // -lib
	ShowCFG  string // -cfg
	CacheDir string // -cache-dir
	Stats    bool   // -stats
	Explain  bool   // -explain
	Validate bool   // -validate
	// FnCache is -fn-cache: the function-granular cache layer (per-function
	// sub-entries with early cutoff), on by default whenever a cache store
	// is configured. -fn-cache=false keeps caching module-granular, the
	// baseline the editloop benchmark compares against.
	FnCache bool

	// RemoteCache is the -remote-cache blob server address; when set, the
	// run's store gains a remote layer below the disk cache.
	RemoteCache string
	// CacheMaxBytes is -cache-max-bytes: a byte bound on the on-disk cache
	// directory, enforced by eviction (0 = unbounded).
	CacheMaxBytes int64
	// Shard is the -shard "i/n" spec. When set, the positional sources are
	// treated as one module each and this process checks only the modules a
	// stable hash assigns to shard i of n (see RunShard).
	Shard string
	// DiagJSONL is the -diag-jsonl path: every retained diagnostic is
	// streamed to it as one self-contained JSON record per line, in output
	// order, for cross-shard merging.
	DiagJSONL string

	StatsJSON  string // -stats-json
	TracePath  string // -trace
	TraceOut   string // -trace-out
	HotN       int    // -hot
	CPUProfile string // -cpuprofile
	MemProfile string // -memprofile

	MaxMsgs int // -max (already applied to Flags)
	Jobs    int // -jobs

	// Serve is the -serve listen address. When set, cmd/golclint starts the
	// analysis server instead of a one-shot run, and Paths may be empty.
	Serve string
	// ServeInFlight and ServePerClient bound the server's concurrent checks
	// globally and per client (0 = server defaults).
	ServeInFlight  int
	ServePerClient int
	// CacheServe is the -cache-serve listen address. When set, cmd/golclint
	// runs the shared blob-cache server (backed by -cache-dir, bounded by
	// -cache-max-bytes) instead of checking files, and Paths may be empty.
	CacheServe string

	// Lib, when non-nil, is a preloaded interface library to check against —
	// the programmatic form of -lib. Execute loads LoadLib from disk into
	// the same path; the server installs its resident libraries here.
	Lib *library.Library
	// Metrics, when non-nil, receives phase timings and counters even when
	// no stats flag asked for them. The server sets it to collect
	// per-request counters; when nil, Execute creates metrics only if an
	// output flag needs them.
	Metrics *obs.Metrics
	// DiagSink, when non-nil, receives each retained diagnostic in output
	// order — the programmatic form of -diag-jsonl. The shard runner shares
	// one JSONL writer across its per-module checks this way; when set, it
	// takes precedence over DiagJSONL.
	DiagSink func(*diag.Diagnostic)
}

// ParseConfig parses one golclint argument vector into a Config. It is
// pure: a fresh FlagSet per call, no globals touched, no filesystem access —
// so the analysis server can validate a request's flags without mutating
// any resident state, and concurrent parses cannot interfere. Usage and
// error text goes to errw exactly as the CLI prints it; the returned error
// is non-nil whenever the CLI would exit 2 before loading inputs.
func ParseConfig(args []string, errw io.Writer) (*Config, error) {
	fs := flag.NewFlagSet("golclint", flag.ContinueOnError)
	fs.SetOutput(errw)
	cfg := &Config{}
	var incDirs multiFlag
	flagToggles := fs.String("flags", "", "space-separated checker flag toggles (+name / -name)")
	fs.StringVar(&cfg.DumpLib, "dump-lib", "", "write an interface library to this file")
	fs.StringVar(&cfg.LoadLib, "lib", "", "load an interface library from this file")
	fs.StringVar(&cfg.ShowCFG, "cfg", "", "print the named function's control-flow graph")
	fs.StringVar(&cfg.CacheDir, "cache-dir", "", "persistent analysis cache directory (empty = caching off)")
	fs.BoolVar(&cfg.FnCache, "fn-cache", true, "function-granular cache sub-entries: a dirty module re-checks only its edited functions (false = module-granular caching)")
	fs.BoolVar(&cfg.Stats, "stats", false, "print summary statistics")
	fs.StringVar(&cfg.StatsJSON, "stats-json", "", "write run metrics and message counts as JSON to this file")
	fs.StringVar(&cfg.TracePath, "trace", "", "write per-function trace events (JSONL) to this file")
	fs.BoolVar(&cfg.Explain, "explain", false, "print the witness path (branch decisions and state transitions) under each warning")
	fs.BoolVar(&cfg.Validate, "validate", false, "replay each warning's witness path through the instrumented interpreter and tag it confirmed / unreproduced / path-infeasible")
	fs.StringVar(&cfg.TraceOut, "trace-out", "", "write hierarchical spans as Chrome trace_event JSON to this file (Perfetto-loadable)")
	fs.IntVar(&cfg.HotN, "hot", 0, "print the N slowest functions by check wall time")
	fs.StringVar(&cfg.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&cfg.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
	fs.IntVar(&cfg.MaxMsgs, "max", 0, "maximum number of messages (0 = unlimited)")
	fs.IntVar(&cfg.Jobs, "jobs", 0, "concurrent checking workers (0 = GOMAXPROCS, 1 = serial)")
	fs.StringVar(&cfg.Serve, "serve", "", "run as an analysis server on this listen address (host:port) instead of checking files")
	fs.IntVar(&cfg.ServeInFlight, "serve-inflight", 0, "server mode: maximum concurrent check computations (0 = 2x GOMAXPROCS)")
	fs.IntVar(&cfg.ServePerClient, "serve-per-client", 0, "server mode: maximum concurrent requests per client before 429 (0 = default)")
	fs.StringVar(&cfg.CacheServe, "cache-serve", "", "run as a shared blob-cache server on this listen address (host:port); requires -cache-dir")
	fs.StringVar(&cfg.RemoteCache, "remote-cache", "", "shared blob-cache server address (host:port or URL) to layer below the disk cache")
	fs.Int64Var(&cfg.CacheMaxBytes, "cache-max-bytes", 0, "bound the on-disk cache directory to this many bytes, evicting oldest entries (0 = unbounded)")
	fs.StringVar(&cfg.Shard, "shard", "", "check only shard i of n ('i/n', 0 <= i < n): each source file is one module, assigned by a stable hash of its base name")
	fs.StringVar(&cfg.DiagJSONL, "diag-jsonl", "", "stream retained diagnostics as one JSON record per line to this file (mergeable across shards)")
	fs.Var(&incDirs, "I", "include directory (repeatable)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() == 0 && cfg.Serve == "" && cfg.CacheServe == "" {
		fmt.Fprintln(errw, "golclint: no input files")
		fs.Usage()
		return nil, errors.New("no input files")
	}
	if cfg.CacheServe != "" && cfg.CacheDir == "" {
		fmt.Fprintln(errw, "golclint: -cache-serve requires -cache-dir")
		return nil, errors.New("-cache-serve requires -cache-dir")
	}
	if cfg.Shard != "" {
		if _, _, err := ParseShard(cfg.Shard); err != nil {
			fmt.Fprintf(errw, "golclint: %v\n", err)
			return nil, err
		}
	}

	fl := flags.Default()
	fl.MaxMessages = cfg.MaxMsgs
	for _, tog := range strings.Fields(*flagToggles) {
		if err := fl.Set(tog); err != nil {
			fmt.Fprintf(errw, "golclint: %v\n", err)
			return nil, err
		}
	}
	cfg.Flags = fl
	cfg.Paths = fs.Args()
	cfg.IncDirs = incDirs
	return cfg, nil
}

// LoadInputs reads cfg.Paths from disk — keyed by base name, which is how
// diagnostics report positions — and builds the include resolver over the
// sources' directories plus the -I dirs. It is the only part of a run that
// touches the filesystem for inputs; the analysis server supplies sources
// and an includer directly and never calls it.
func (cfg *Config) LoadInputs() (map[string]string, cpp.Includer, error) {
	files := map[string]string{}
	dirSet := map[string]bool{}
	for _, path := range cfg.Paths {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		files[filepath.Base(path)] = string(b)
		dirSet[filepath.Dir(path)] = true
	}
	for _, d := range cfg.IncDirs {
		dirSet[d] = true
	}
	var dirs []string
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	return files, dirIncluder{dirs: dirs}, nil
}
