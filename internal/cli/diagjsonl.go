package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"golclint/internal/diag"
)

// DiagRecord is one line of the -diag-jsonl stream: a self-contained,
// machine-readable record of one retained diagnostic. Records carry the
// machine fields of StatsDiag plus the module that produced them and the
// exact rendered text block the run printed to stdout, so per-shard streams
// merge into a whole-corpus report with nothing else in hand: sorting the
// merged lines yields a canonical order (module, then position within the
// module — the order a single-process run emits), and concatenating the
// sorted records' Text fields reproduces the single-process stdout byte for
// byte. That merge-equals-single-run property is what lets n shard workers
// coordinate only through the shared cache.
type DiagRecord struct {
	Module string `json:"module"`
	// Seq is the record's zero-based emission index within its module,
	// zero-padded to fixed width. Module and Seq lead the record, so a
	// plain lexicographic sort of raw lines (`sort merged.jsonl`) yields
	// exactly the canonical order — no JSON parsing needed to merge.
	Seq              string   `json:"seq"`
	Pos              string   `json:"pos"`
	Code             string   `json:"code"`
	Msg              string   `json:"msg"`
	Ref              string   `json:"ref,omitempty"`
	Witness          []string `json:"witness,omitempty"`
	Validation       string   `json:"validation,omitempty"`
	ValidationDetail string   `json:"validation_detail,omitempty"`
	Text             string   `json:"text"`
}

// DiagJSONLWriter streams diagnostics as DiagRecord lines. It is safe for
// concurrent Sinks (shard workers within one process may share it); each
// record is written as one atomic line. Write errors latch into Err rather
// than failing the check — diagnostics were already computed, and a broken
// stream is the driver's to detect.
type DiagJSONLWriter struct {
	mu     sync.Mutex
	w      io.Writer
	module string
	mode   renderMode
	seq    int
	err    error
	n      int
}

// renderMode selects which rendered surface the Text field captures,
// matching what the run prints to stdout.
type renderMode int

const (
	renderPlain renderMode = iota
	renderValidated
	renderExplained
)

// diagRenderMode maps the CLI's output-mode precedence (explain wins over
// validate, see Execute) onto the Text renderer.
func diagRenderMode(explain, validate bool) renderMode {
	switch {
	case explain:
		return renderExplained
	case validate:
		return renderValidated
	default:
		return renderPlain
	}
}

// NewDiagJSONLWriter returns a writer streaming to w, labeling records with
// module and rendering Text in the given mode.
func NewDiagJSONLWriter(w io.Writer, module string, mode renderMode) *DiagJSONLWriter {
	return &DiagJSONLWriter{w: w, module: module, mode: mode}
}

// SetModule relabels subsequent records (the shard runner switches it
// between per-module checks; those run sequentially, but take the lock for
// the general contract).
func (j *DiagJSONLWriter) SetModule(module string) {
	j.mu.Lock()
	j.module = module
	j.seq = 0
	j.mu.Unlock()
}

// Sink writes one diagnostic as a record line (a core.Options.DiagSink).
func (j *DiagJSONLWriter) Sink(d *diag.Diagnostic) {
	var text string
	switch j.mode {
	case renderExplained:
		text = d.Explain() + "\n"
	case renderValidated:
		text = d.Validated() + "\n"
	default:
		text = d.String() + "\n"
	}
	sd := StatsDiags([]*diag.Diagnostic{d})[0]
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := DiagRecord{
		Module: j.module,
		Seq:    fmt.Sprintf("%08d", j.seq),
		Pos:    sd.Pos, Code: sd.Code, Msg: sd.Msg, Ref: sd.Ref,
		Witness:    sd.Witness,
		Validation: sd.Validation, ValidationDetail: sd.ValidationDetail,
		Text: text,
	}
	b, err := json.Marshal(rec)
	if err != nil { // a record we built ourselves always marshals
		if j.err == nil {
			j.err = err
		}
		return
	}
	if j.err != nil {
		return
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		j.err = err
		return
	}
	j.seq++
	j.n++
}

// fail latches the first error.
func (j *DiagJSONLWriter) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

// Err returns the first write error, if any.
func (j *DiagJSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Records reports how many records were written.
func (j *DiagJSONLWriter) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}
