package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestParseConfigFields(t *testing.T) {
	var errb bytes.Buffer
	cfg, err := ParseConfig([]string{
		"-flags", "+null -def", "-jobs", "4", "-max", "7", "-explain",
		"-cache-dir", "/tmp/cc", "-I", "inc1", "-I", "inc2",
		"a.c", "b.c",
	}, &errb)
	if err != nil {
		t.Fatalf("ParseConfig: %v (stderr %q)", err, errb.String())
	}
	if got := cfg.Paths; len(got) != 2 || got[0] != "a.c" || got[1] != "b.c" {
		t.Errorf("Paths = %v", got)
	}
	if len(cfg.IncDirs) != 2 || cfg.IncDirs[0] != "inc1" {
		t.Errorf("IncDirs = %v", cfg.IncDirs)
	}
	if cfg.Jobs != 4 || !cfg.Explain || cfg.Validate || cfg.CacheDir != "/tmp/cc" {
		t.Errorf("cfg = %+v", cfg)
	}
	m := cfg.Flags.Map()
	if !m["null"] || m["def"] {
		t.Errorf("flag toggles not applied: %v", m)
	}
	if cfg.Flags.MaxMessages != 7 {
		t.Errorf("MaxMessages = %d", cfg.Flags.MaxMessages)
	}
	if errb.Len() != 0 {
		t.Errorf("stderr on success: %q", errb.String())
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error text
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "flag provided but not defined"},
		{"no inputs", []string{}, "no input files"},
		{"no inputs with flags", []string{"-stats"}, "no input files"},
		{"bad toggle", []string{"-flags", "+nosuchtoggle", "a.c"}, "golclint:"},
		{"malformed toggle", []string{"-flags", "null", "a.c"}, "golclint:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errb bytes.Buffer
			cfg, err := ParseConfig(tc.args, &errb)
			if err == nil {
				t.Fatalf("ParseConfig(%v) succeeded: %+v", tc.args, cfg)
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr = %q, want substring %q", errb.String(), tc.want)
			}
		})
	}
}

// -serve waives the no-input-files requirement: a daemon starts with no
// positional arguments.
func TestParseConfigServe(t *testing.T) {
	var errb bytes.Buffer
	cfg, err := ParseConfig([]string{"-serve", "127.0.0.1:0", "-serve-inflight", "3", "-serve-per-client", "2"}, &errb)
	if err != nil {
		t.Fatalf("ParseConfig: %v (stderr %q)", err, errb.String())
	}
	if cfg.Serve != "127.0.0.1:0" || cfg.ServeInFlight != 3 || cfg.ServePerClient != 2 {
		t.Errorf("cfg = %+v", cfg)
	}
	if len(cfg.Paths) != 0 {
		t.Errorf("Paths = %v", cfg.Paths)
	}
}

// ParseConfig is pure: concurrent parses with conflicting arguments must
// not interfere (this is what lets the server validate requests in
// parallel), and parsing alone must not touch the filesystem.
func TestParseConfigPure(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			var errb bytes.Buffer
			args := []string{"-jobs", "1", "-flags", "+null", "one.c"}
			if i%2 == 0 {
				args = []string{"-jobs", "8", "-flags", "-null", "-explain", "two.c", "three.c"}
			}
			cfg, err := ParseConfig(args, &errb)
			if err != nil {
				t.Errorf("ParseConfig: %v", err)
				return
			}
			if i%2 == 0 {
				if cfg.Jobs != 8 || cfg.Flags.Map()["null"] || len(cfg.Paths) != 2 {
					t.Errorf("cross-parse interference: %+v", cfg)
				}
			} else {
				if cfg.Jobs != 1 || !cfg.Flags.Map()["null"] || len(cfg.Paths) != 1 {
					t.Errorf("cross-parse interference: %+v", cfg)
				}
			}
		}()
	}
	wg.Wait()

	// The nonexistent path above parses fine; only LoadInputs reads disk.
	var errb bytes.Buffer
	cfg, err := ParseConfig([]string{"definitely/not/a/file.c"}, &errb)
	if err != nil {
		t.Fatalf("ParseConfig rejected a nonexistent path: %v", err)
	}
	if _, _, err := cfg.LoadInputs(); err == nil {
		t.Error("LoadInputs succeeded on a nonexistent path")
	}
}

func TestLoadInputs(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "m.c"), []byte("int x;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "defs.h"), []byte("typedef int myint;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfig([]string{"-I", sub, filepath.Join(dir, "m.c")}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	files, inc, err := cfg.LoadInputs()
	if err != nil {
		t.Fatal(err)
	}
	// Keyed by base name, which is how diagnostics report positions.
	if files["m.c"] != "int x;\n" {
		t.Errorf("files = %v", files)
	}
	if src, err := inc.Include("defs.h"); err != nil || src != "typedef int myint;\n" {
		t.Errorf("Include(defs.h) = %q, %v", src, err)
	}
	if _, err := inc.Include("absent.h"); err == nil {
		t.Error("Include(absent.h) succeeded")
	}
}
