package cli

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"

	"golclint/internal/atomicio"
	"golclint/internal/cache"
	cfgpkg "golclint/internal/cfg"
	"golclint/internal/core"
	"golclint/internal/cpp"
	"golclint/internal/diag"
	"golclint/internal/library"
	"golclint/internal/obs"
	"golclint/internal/sema"
	validatepkg "golclint/internal/validate"
)

// maxResidentLibraries bounds a Session's interface-library memo. Each
// entry is one distinct header set a client checks against; a daemon
// serving one repository sees a handful.
const maxResidentLibraries = 16

// Session owns the warm state a long-lived analysis process keeps between
// runs: a resident in-memory entry store layered over the on-disk cache,
// and a memo of interface libraries keyed by header-set content. The zero
// Session is valid and holds nothing resident — RunConfig uses one per
// invocation, so the one-shot CLI path behaves exactly as before (disk
// cache only, no memory layer). NewSession builds the server form.
//
// A Session is safe for concurrent Execute calls: the stores are internally
// locked, the library memo is mutex-guarded, and everything else Execute
// touches is per-call.
type Session struct {
	mem    *cache.MemStore
	disk   *cache.Cache
	remote *cache.RemoteStore

	libMu sync.Mutex
	libs  map[string]*library.Library
}

// NewSession builds a warm session: a resident memory store, layered over a
// persistent cache at cacheDir when non-empty (so outcomes survive daemon
// restarts and a cold daemon inherits prior CLI runs' entries).
func NewSession(cacheDir string) (*Session, error) {
	s := &Session{mem: cache.NewMemStore(), libs: map[string]*library.Library{}}
	if cacheDir != "" {
		c, err := cache.Open(cacheDir)
		if err != nil {
			return nil, err
		}
		s.disk = c
	}
	return s, nil
}

// SetRemote layers a remote blob store below the disk cache (distributed
// sharded checking: workers coordinate only through this shared store).
func (s *Session) SetRemote(r *cache.RemoteStore) { s.remote = r }

// Store composes the session's entry store from its configured layers,
// fastest first: memory over disk over remote. A Get falls through until a
// layer hits and the entry is promoted into every faster layer; a Put
// writes through all of them. Absent layers drop out of the composition;
// nil when the session holds none.
func (s *Session) Store() cache.Store {
	var slow cache.Store
	switch {
	case s.disk != nil && s.remote != nil:
		slow = &cache.Layered{Fast: s.disk, Slow: s.remote}
	case s.disk != nil:
		slow = s.disk
	case s.remote != nil:
		slow = s.remote
	}
	switch {
	case s.mem != nil && slow != nil:
		return &cache.Layered{Fast: s.mem, Slow: slow}
	case s.mem != nil:
		return s.mem
	default:
		return slow
	}
}

// MemStats snapshots the resident store's counters (zero when the session
// has no memory layer).
func (s *Session) MemStats() cache.MemStats { return s.mem.Stats() }

// LayerStats snapshots every configured store layer's counters, keyed by
// layer name ("mem", "disk", "remote") — the shape -stats-json and the
// server /stats endpoints surface.
func (s *Session) LayerStats() map[string]cache.StoreStats {
	out := map[string]cache.StoreStats{}
	if s.mem != nil {
		out["mem"] = s.mem.Stats()
	}
	if s.disk != nil {
		out["disk"] = s.disk.Stats()
	}
	if s.remote != nil {
		out["remote"] = s.remote.Stats()
	}
	return out
}

// ResidentLibraries reports how many interface libraries the session holds.
func (s *Session) ResidentLibraries() int {
	s.libMu.Lock()
	defer s.libMu.Unlock()
	return len(s.libs)
}

// LibraryFor returns the interface library built from the given header set,
// memoized by content hash so repeated server requests against one
// repository share a single build — the daemon's answer to the per-process
// library rebuild every cold CLI run pays. Dirty-module detection is
// downstream: cached module entries record per-symbol fingerprints from
// this library (Library.Fingerprints), so an interface change invalidates
// exactly the dependents. Returns nil for an empty header set.
func (s *Session) LibraryFor(headers map[string]string) *library.Library {
	if len(headers) == 0 {
		return nil
	}
	key := cache.Key(core.Version, "interface-library", headers)
	s.libMu.Lock()
	defer s.libMu.Unlock()
	if s.libs == nil {
		s.libs = map[string]*library.Library{}
	}
	if lib, ok := s.libs[key]; ok {
		return lib
	}
	res := core.CheckSources(headers, core.Options{})
	lib := library.Build(res.Program)
	if len(s.libs) >= maxResidentLibraries {
		// Arbitrary eviction: the memo is a warmth optimization, rebuilt on
		// demand from content that is itself hashed, never a correctness
		// input.
		for k := range s.libs {
			delete(s.libs, k)
			break
		}
	}
	s.libs[key] = lib
	return lib
}

// Execute runs one parsed invocation over already-loaded sources, writing
// diagnostics to stdout and errors to stderr. It is the whole post-parse
// CLI: metrics and tracing setup, cache wiring through the session's store,
// checking, rendering, and the report surfaces. Exit status is 1 when
// anomalies were reported, 2 on I/O errors; the Result is also returned so
// programmatic callers (the analysis server) can render machine-readable
// diagnostics without re-parsing the text output.
func (s *Session) Execute(cfg *Config, files map[string]string, inc cpp.Includer, stdout, stderr io.Writer) (int, *core.Result) {
	metrics := cfg.Metrics
	if metrics == nil && (cfg.Stats || cfg.StatsJSON != "" || cfg.TracePath != "" || cfg.TraceOut != "" || cfg.HotN > 0) {
		metrics = obs.New()
	}
	if cfg.TraceOut != "" || cfg.HotN > 0 {
		metrics.EnableSpans()
		metrics.BeginRunSpan("golclint")
	}
	if cfg.TracePath != "" {
		tf, err := os.Create(cfg.TracePath)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, nil
		}
		defer tf.Close()
		tracer := obs.NewJSONLTracer(tf)
		metrics.SetTracer(tracer)
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintf(stderr, "golclint: trace: %v\n", err)
			}
		}()
	}
	if cfg.CPUProfile != "" {
		pf, err := os.Create(cfg.CPUProfile)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, nil
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, nil
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.MemProfile != "" {
		mp := cfg.MemProfile
		defer func() {
			mf, err := os.Create(mp)
			if err != nil {
				fmt.Fprintf(stderr, "golclint: %v\n", err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(stderr, "golclint: %v\n", err)
			}
		}()
	}

	// -validate needs witness paths to derive harnesses from, so it implies
	// provenance recording even without -explain.
	opt := core.Options{Flags: cfg.Flags, Includes: inc, Metrics: metrics, Jobs: cfg.Jobs, Explain: cfg.Explain || cfg.Validate}
	opt.DiagSink = cfg.DiagSink
	var jsonlFile *os.File
	var jsonlBuf *bufio.Writer
	var jsonlWriter *DiagJSONLWriter
	if cfg.DiagJSONL != "" && cfg.DiagSink == nil {
		f, err := os.Create(cfg.DiagJSONL)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, nil
		}
		jsonlFile, jsonlBuf = f, bufio.NewWriter(f)
		jsonlWriter = NewDiagJSONLWriter(jsonlBuf, moduleLabel(files), diagRenderMode(cfg.Explain, cfg.Validate))
		opt.DiagSink = jsonlWriter.Sink
	}
	if cfg.Validate {
		opt.Validate = func(prog *sema.Program, diags []*diag.Diagnostic) {
			validatepkg.Apply(prog, diags, validatepkg.Options{})
		}
	}
	// -cfg needs the parsed units, which a cache hit skips building, so it
	// disables the cache for this run rather than printing nothing.
	if cfg.ShowCFG == "" {
		if st := s.Store(); st != nil {
			opt.Cache = st
			opt.CacheExport = library.ExportProgram
			// Function-granular incrementality: with a store present, each
			// function definition gets its own sub-entry so a dirty module
			// re-checks only its edited functions. -fn-cache=false reverts
			// to module-granular caching (the benchmark baseline).
			opt.EnvFingerprint = library.SymbolFingerprints
			opt.DisableFnCache = !cfg.FnCache
		}
	}

	var res *core.Result
	lib := cfg.Lib
	if lib == nil && cfg.LoadLib != "" {
		f, err := os.Open(cfg.LoadLib)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, nil
		}
		var derr error
		lib, derr = library.Decode(f)
		f.Close()
		if derr != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", derr)
			return 2, nil
		}
	}
	if lib != nil {
		res = library.CheckModule(files, lib, opt)
	} else {
		res = core.CheckSources(files, opt)
	}

	metrics.EndSpan(metrics.RunSpan())

	if jsonlWriter != nil {
		err := jsonlBuf.Flush()
		if cerr := jsonlFile.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = jsonlWriter.Err()
		}
		if err != nil {
			fmt.Fprintf(stderr, "golclint: diag-jsonl: %v\n", err)
			return 2, res
		}
	}

	for _, e := range res.ParseErrors {
		fmt.Fprintf(stderr, "%v\n", e)
	}
	for _, e := range res.SemaErrors {
		fmt.Fprintf(stderr, "%v\n", e)
	}
	switch {
	case cfg.Explain:
		// Explain output includes the validation line when -validate also ran.
		fmt.Fprint(stdout, res.ExplainedMessages())
	case cfg.Validate:
		fmt.Fprint(stdout, res.ValidatedMessages())
	default:
		fmt.Fprint(stdout, res.Messages())
	}

	if cfg.TraceOut != "" {
		var buf bytes.Buffer
		err := obs.WriteTraceEvents(&buf, metrics.Spans())
		if err == nil {
			err = atomicio.WriteFile(cfg.TraceOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, res
		}
	}
	if cfg.HotN > 0 {
		fmt.Fprint(stdout, obs.FormatHotTable(metrics.Spans(), cfg.HotN))
	}

	if cfg.ShowCFG != "" {
		printed := false
		for _, u := range res.Units {
			for _, f := range u.Funcs() {
				if f.Name == cfg.ShowCFG {
					fmt.Fprint(stdout, cfgpkg.Build(f).Dump())
					printed = true
				}
			}
		}
		if !printed {
			fmt.Fprintf(stderr, "golclint: function %q not found\n", cfg.ShowCFG)
		}
	}

	if cfg.DumpLib != "" {
		if code := writeLibrary(cfg.DumpLib, res, cfg.Stats, stdout, stderr); code != 0 {
			return code, res
		}
	}

	if cfg.Stats {
		printStatsSummary(stdout, res)
	}

	if cfg.StatsJSON != "" {
		if err := writeStatsJSON(cfg.StatsJSON, cfg.Paths, cfg.Flags, metrics, res, cfg.Explain || cfg.Validate, s.LayerStats()); err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, res
		}
	}

	if len(res.Diags) > 0 || len(res.ParseErrors) > 0 {
		return 1, res
	}
	return 0, res
}

// moduleLabel names a module for diag-jsonl records: its sorted file names.
func moduleLabel(files map[string]string) string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
