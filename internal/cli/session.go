package cli

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"

	"golclint/internal/atomicio"
	"golclint/internal/cache"
	cfgpkg "golclint/internal/cfg"
	"golclint/internal/core"
	"golclint/internal/cpp"
	"golclint/internal/diag"
	"golclint/internal/library"
	"golclint/internal/obs"
	"golclint/internal/sema"
	validatepkg "golclint/internal/validate"
)

// maxResidentLibraries bounds a Session's interface-library memo. Each
// entry is one distinct header set a client checks against; a daemon
// serving one repository sees a handful.
const maxResidentLibraries = 16

// Session owns the warm state a long-lived analysis process keeps between
// runs: a resident in-memory entry store layered over the on-disk cache,
// and a memo of interface libraries keyed by header-set content. The zero
// Session is valid and holds nothing resident — RunConfig uses one per
// invocation, so the one-shot CLI path behaves exactly as before (disk
// cache only, no memory layer). NewSession builds the server form.
//
// A Session is safe for concurrent Execute calls: the stores are internally
// locked, the library memo is mutex-guarded, and everything else Execute
// touches is per-call.
type Session struct {
	mem  *cache.MemStore
	disk *cache.Cache

	libMu sync.Mutex
	libs  map[string]*library.Library
}

// NewSession builds a warm session: a resident memory store, layered over a
// persistent cache at cacheDir when non-empty (so outcomes survive daemon
// restarts and a cold daemon inherits prior CLI runs' entries).
func NewSession(cacheDir string) (*Session, error) {
	s := &Session{mem: cache.NewMemStore(), libs: map[string]*library.Library{}}
	if cacheDir != "" {
		c, err := cache.Open(cacheDir)
		if err != nil {
			return nil, err
		}
		s.disk = c
	}
	return s, nil
}

// Store composes the session's entry store: memory over disk when both
// exist, whichever one otherwise, nil when the session holds neither.
func (s *Session) Store() cache.Store {
	switch {
	case s.mem != nil && s.disk != nil:
		return &cache.Layered{Fast: s.mem, Slow: s.disk}
	case s.mem != nil:
		return s.mem
	case s.disk != nil:
		return s.disk
	default:
		return nil
	}
}

// MemStats snapshots the resident store's counters (zero when the session
// has no memory layer).
func (s *Session) MemStats() cache.MemStats { return s.mem.Stats() }

// ResidentLibraries reports how many interface libraries the session holds.
func (s *Session) ResidentLibraries() int {
	s.libMu.Lock()
	defer s.libMu.Unlock()
	return len(s.libs)
}

// LibraryFor returns the interface library built from the given header set,
// memoized by content hash so repeated server requests against one
// repository share a single build — the daemon's answer to the per-process
// library rebuild every cold CLI run pays. Dirty-module detection is
// downstream: cached module entries record per-symbol fingerprints from
// this library (Library.Fingerprints), so an interface change invalidates
// exactly the dependents. Returns nil for an empty header set.
func (s *Session) LibraryFor(headers map[string]string) *library.Library {
	if len(headers) == 0 {
		return nil
	}
	key := cache.Key(core.Version, "interface-library", headers)
	s.libMu.Lock()
	defer s.libMu.Unlock()
	if s.libs == nil {
		s.libs = map[string]*library.Library{}
	}
	if lib, ok := s.libs[key]; ok {
		return lib
	}
	res := core.CheckSources(headers, core.Options{})
	lib := library.Build(res.Program)
	if len(s.libs) >= maxResidentLibraries {
		// Arbitrary eviction: the memo is a warmth optimization, rebuilt on
		// demand from content that is itself hashed, never a correctness
		// input.
		for k := range s.libs {
			delete(s.libs, k)
			break
		}
	}
	s.libs[key] = lib
	return lib
}

// Execute runs one parsed invocation over already-loaded sources, writing
// diagnostics to stdout and errors to stderr. It is the whole post-parse
// CLI: metrics and tracing setup, cache wiring through the session's store,
// checking, rendering, and the report surfaces. Exit status is 1 when
// anomalies were reported, 2 on I/O errors; the Result is also returned so
// programmatic callers (the analysis server) can render machine-readable
// diagnostics without re-parsing the text output.
func (s *Session) Execute(cfg *Config, files map[string]string, inc cpp.Includer, stdout, stderr io.Writer) (int, *core.Result) {
	metrics := cfg.Metrics
	if metrics == nil && (cfg.Stats || cfg.StatsJSON != "" || cfg.TracePath != "" || cfg.TraceOut != "" || cfg.HotN > 0) {
		metrics = obs.New()
	}
	if cfg.TraceOut != "" || cfg.HotN > 0 {
		metrics.EnableSpans()
		metrics.BeginRunSpan("golclint")
	}
	if cfg.TracePath != "" {
		tf, err := os.Create(cfg.TracePath)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, nil
		}
		defer tf.Close()
		tracer := obs.NewJSONLTracer(tf)
		metrics.SetTracer(tracer)
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintf(stderr, "golclint: trace: %v\n", err)
			}
		}()
	}
	if cfg.CPUProfile != "" {
		pf, err := os.Create(cfg.CPUProfile)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, nil
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, nil
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.MemProfile != "" {
		mp := cfg.MemProfile
		defer func() {
			mf, err := os.Create(mp)
			if err != nil {
				fmt.Fprintf(stderr, "golclint: %v\n", err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(stderr, "golclint: %v\n", err)
			}
		}()
	}

	// -validate needs witness paths to derive harnesses from, so it implies
	// provenance recording even without -explain.
	opt := core.Options{Flags: cfg.Flags, Includes: inc, Metrics: metrics, Jobs: cfg.Jobs, Explain: cfg.Explain || cfg.Validate}
	if cfg.Validate {
		opt.Validate = func(prog *sema.Program, diags []*diag.Diagnostic) {
			validatepkg.Apply(prog, diags, validatepkg.Options{})
		}
	}
	// -cfg needs the parsed units, which a cache hit skips building, so it
	// disables the cache for this run rather than printing nothing.
	if cfg.ShowCFG == "" {
		if st := s.Store(); st != nil {
			opt.Cache = st
			opt.CacheExport = library.ExportProgram
		}
	}

	var res *core.Result
	lib := cfg.Lib
	if lib == nil && cfg.LoadLib != "" {
		f, err := os.Open(cfg.LoadLib)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, nil
		}
		var derr error
		lib, derr = library.Decode(f)
		f.Close()
		if derr != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", derr)
			return 2, nil
		}
	}
	if lib != nil {
		res = library.CheckModule(files, lib, opt)
	} else {
		res = core.CheckSources(files, opt)
	}

	metrics.EndSpan(metrics.RunSpan())

	for _, e := range res.ParseErrors {
		fmt.Fprintf(stderr, "%v\n", e)
	}
	for _, e := range res.SemaErrors {
		fmt.Fprintf(stderr, "%v\n", e)
	}
	switch {
	case cfg.Explain:
		// Explain output includes the validation line when -validate also ran.
		fmt.Fprint(stdout, res.ExplainedMessages())
	case cfg.Validate:
		fmt.Fprint(stdout, res.ValidatedMessages())
	default:
		fmt.Fprint(stdout, res.Messages())
	}

	if cfg.TraceOut != "" {
		var buf bytes.Buffer
		err := obs.WriteTraceEvents(&buf, metrics.Spans())
		if err == nil {
			err = atomicio.WriteFile(cfg.TraceOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, res
		}
	}
	if cfg.HotN > 0 {
		fmt.Fprint(stdout, obs.FormatHotTable(metrics.Spans(), cfg.HotN))
	}

	if cfg.ShowCFG != "" {
		printed := false
		for _, u := range res.Units {
			for _, f := range u.Funcs() {
				if f.Name == cfg.ShowCFG {
					fmt.Fprint(stdout, cfgpkg.Build(f).Dump())
					printed = true
				}
			}
		}
		if !printed {
			fmt.Fprintf(stderr, "golclint: function %q not found\n", cfg.ShowCFG)
		}
	}

	if cfg.DumpLib != "" {
		if code := writeLibrary(cfg.DumpLib, res, cfg.Stats, stdout, stderr); code != 0 {
			return code, res
		}
	}

	if cfg.Stats {
		counts := res.CountByCode()
		keys := make([]diag.Code, 0, len(counts))
		for c := range counts {
			keys = append(keys, c)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		fmt.Fprintf(stdout, "%d message(s), %d suppressed\n", len(res.Diags), res.Suppressed)
		for _, c := range keys {
			fmt.Fprintf(stdout, "  %-16s %d\n", c, counts[c])
		}
	}

	if cfg.StatsJSON != "" {
		if err := writeStatsJSON(cfg.StatsJSON, cfg.Paths, cfg.Flags, metrics, res, cfg.Explain || cfg.Validate); err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2, res
		}
	}

	if len(res.Diags) > 0 || len(res.ParseErrors) > 0 {
		return 1, res
	}
	return 0, res
}
