// Package cli implements the golclint command: flag parsing, file loading,
// cache wiring, and report rendering. It lives in an internal package (with
// all output directed to caller-supplied writers) so that tests — notably
// the golden-corpus runner — can drive the exact production code path
// without spawning a subprocess.
package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"golclint/internal/atomicio"
	"golclint/internal/cache"
	"golclint/internal/cfg"
	"golclint/internal/core"
	"golclint/internal/cpp"
	"golclint/internal/diag"
	"golclint/internal/flags"
	"golclint/internal/library"
	"golclint/internal/obs"
	"golclint/internal/sema"
	validatepkg "golclint/internal/validate"
)

// dirIncluder resolves #include files against a list of directories.
type dirIncluder struct {
	dirs []string
}

// Include implements cpp.Includer. A file that exists but cannot be read
// (permissions, I/O) reports that error instead of pretending the file is
// absent — otherwise the builtin-header fallback could silently mask it.
func (d dirIncluder) Include(name string) (string, error) {
	var firstErr error
	for _, dir := range d.dirs {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err == nil {
			return string(b), nil
		}
		if !os.IsNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return "", firstErr
	}
	return "", &cpp.NotFoundError{Name: name}
}

// multiFlag collects repeated -I options.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

// Run executes one golclint invocation, writing diagnostics to stdout and
// errors to stderr. Exit status is 1 when anomalies were reported, 2 on
// usage or I/O errors.
func Run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("golclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		flagToggles = fs.String("flags", "", "space-separated checker flag toggles (+name / -name)")
		dumpLib     = fs.String("dump-lib", "", "write an interface library to this file")
		loadLib     = fs.String("lib", "", "load an interface library from this file")
		showCFG     = fs.String("cfg", "", "print the named function's control-flow graph")
		cacheDir    = fs.String("cache-dir", "", "persistent analysis cache directory (empty = caching off)")
		stats       = fs.Bool("stats", false, "print summary statistics")
		statsJSON   = fs.String("stats-json", "", "write run metrics and message counts as JSON to this file")
		tracePath   = fs.String("trace", "", "write per-function trace events (JSONL) to this file")
		explain     = fs.Bool("explain", false, "print the witness path (branch decisions and state transitions) under each warning")
		validate    = fs.Bool("validate", false, "replay each warning's witness path through the instrumented interpreter and tag it confirmed / unreproduced / path-infeasible")
		traceOut    = fs.String("trace-out", "", "write hierarchical spans as Chrome trace_event JSON to this file (Perfetto-loadable)")
		hotN        = fs.Int("hot", 0, "print the N slowest functions by check wall time")
		cpuProfile  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = fs.String("memprofile", "", "write a pprof heap profile to this file")
		maxMsgs     = fs.Int("max", 0, "maximum number of messages (0 = unlimited)")
		jobs        = fs.Int("jobs", 0, "concurrent checking workers (0 = GOMAXPROCS, 1 = serial)")
		incDirs     multiFlag
	)
	fs.Var(&incDirs, "I", "include directory (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "golclint: no input files")
		fs.Usage()
		return 2
	}

	fl := flags.Default()
	fl.MaxMessages = *maxMsgs
	for _, tog := range strings.Fields(*flagToggles) {
		if err := fl.Set(tog); err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
	}

	files := map[string]string{}
	dirSet := map[string]bool{}
	for _, path := range fs.Args() {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		files[filepath.Base(path)] = string(b)
		dirSet[filepath.Dir(path)] = true
	}
	for _, d := range incDirs {
		dirSet[d] = true
	}
	var dirs []string
	for d := range dirSet {
		dirs = append(dirs, d)
	}

	var metrics *obs.Metrics
	if *stats || *statsJSON != "" || *tracePath != "" || *traceOut != "" || *hotN > 0 {
		metrics = obs.New()
	}
	if *traceOut != "" || *hotN > 0 {
		metrics.EnableSpans()
		metrics.BeginRunSpan("golclint")
	}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		defer tf.Close()
		tracer := obs.NewJSONLTracer(tf)
		metrics.SetTracer(tracer)
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintf(stderr, "golclint: trace: %v\n", err)
			}
		}()
	}
	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		mp := *memProfile
		defer func() {
			mf, err := os.Create(mp)
			if err != nil {
				fmt.Fprintf(stderr, "golclint: %v\n", err)
				return
			}
			defer mf.Close()
			runtime.GC() // settle the heap so the profile reflects live objects
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintf(stderr, "golclint: %v\n", err)
			}
		}()
	}

	// -validate needs witness paths to derive harnesses from, so it implies
	// provenance recording even without -explain.
	opt := core.Options{Flags: fl, Includes: dirIncluder{dirs: dirs}, Metrics: metrics, Jobs: *jobs, Explain: *explain || *validate}
	if *validate {
		opt.Validate = func(prog *sema.Program, diags []*diag.Diagnostic) {
			validatepkg.Apply(prog, diags, validatepkg.Options{})
		}
	}
	// -cfg needs the parsed units, which a cache hit skips building, so it
	// disables the cache for this run rather than printing nothing.
	if *cacheDir != "" && *showCFG == "" {
		c, err := cache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		opt.Cache = c
		opt.CacheExport = library.ExportProgram
	}

	var res *core.Result
	if *loadLib != "" {
		f, err := os.Open(*loadLib)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		lib, err := library.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		res = library.CheckModule(files, lib, opt)
	} else {
		res = core.CheckSources(files, opt)
	}

	metrics.EndSpan(metrics.RunSpan())

	for _, e := range res.ParseErrors {
		fmt.Fprintf(stderr, "%v\n", e)
	}
	for _, e := range res.SemaErrors {
		fmt.Fprintf(stderr, "%v\n", e)
	}
	switch {
	case *explain:
		// Explain output includes the validation line when -validate also ran.
		fmt.Fprint(stdout, res.ExplainedMessages())
	case *validate:
		fmt.Fprint(stdout, res.ValidatedMessages())
	default:
		fmt.Fprint(stdout, res.Messages())
	}

	if *traceOut != "" {
		var buf bytes.Buffer
		err := obs.WriteTraceEvents(&buf, metrics.Spans())
		if err == nil {
			err = atomicio.WriteFile(*traceOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
	}
	if *hotN > 0 {
		fmt.Fprint(stdout, obs.FormatHotTable(metrics.Spans(), *hotN))
	}

	if *showCFG != "" {
		printed := false
		for _, u := range res.Units {
			for _, f := range u.Funcs() {
				if f.Name == *showCFG {
					fmt.Fprint(stdout, cfg.Build(f).Dump())
					printed = true
				}
			}
		}
		if !printed {
			fmt.Fprintf(stderr, "golclint: function %q not found\n", *showCFG)
		}
	}

	if *dumpLib != "" {
		if code := writeLibrary(*dumpLib, res, *stats, stdout, stderr); code != 0 {
			return code
		}
	}

	if *stats {
		counts := res.CountByCode()
		keys := make([]diag.Code, 0, len(counts))
		for c := range counts {
			keys = append(keys, c)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		fmt.Fprintf(stdout, "%d message(s), %d suppressed\n", len(res.Diags), res.Suppressed)
		for _, c := range keys {
			fmt.Fprintf(stdout, "  %-16s %d\n", c, counts[c])
		}
	}

	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, fs.Args(), fl, metrics, res, *explain || *validate); err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
	}

	if len(res.Diags) > 0 || len(res.ParseErrors) > 0 {
		return 1
	}
	return 0
}

// writeLibrary emits the checked program's interface library. On a cache
// hit there is no analyzed Program, but the entry stored the serialized
// library, so the dump works identically warm and cold.
func writeLibrary(path string, res *core.Result, stats bool, stdout, stderr io.Writer) int {
	var data []byte
	var lib *library.Library
	switch {
	case res.Program != nil:
		lib = library.Build(res.Program)
		var buf bytes.Buffer
		if err := lib.Encode(&buf); err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		data = buf.Bytes()
	case len(res.CachedLibrary) > 0:
		data = res.CachedLibrary
		if stats {
			var err error
			if lib, err = library.Decode(bytes.NewReader(data)); err != nil {
				fmt.Fprintf(stderr, "golclint: %v\n", err)
				return 2
			}
		}
	default:
		return 0
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "golclint: %v\n", err)
		return 2
	}
	if stats && lib != nil {
		fmt.Fprintf(stdout, "interface library: %s\n", lib.Stats())
	}
	return 0
}

// runStats is the -stats-json document. The schema field names the format
// so downstream tooling can detect incompatible changes.
type runStats struct {
	Schema  string          `json:"schema"`
	Files   []string        `json:"files"`
	Flags   map[string]bool `json:"flags"`
	TotalNS int64           `json:"total_ns"`
	// PhasesNS sum per-worker time (CPU-like totals under -jobs > 1); the
	// *WallNS fields are the wall-clock times of the per-file preprocess
	// and parse fan-outs and the cfg+check fan-out, and Jobs the worker
	// count, so wall-vs-CPU speedup per region is PhasesNS[region]/wall.
	PhasesNS         map[string]int64 `json:"phases_ns"`
	PreprocessWallNS int64            `json:"preprocess_wall_ns"`
	ParseWallNS      int64            `json:"parse_wall_ns"`
	CheckWallNS      int64            `json:"check_wall_ns"`
	Jobs             int              `json:"jobs"`
	Counters         map[string]int64 `json:"counters"`
	Messages         int              `json:"messages"`
	Suppressed       int              `json:"suppressed"`
	ByCode           map[string]int   `json:"messages_by_code"`
	ParseErrors      int              `json:"parse_errors"`
	SemaErrors       int              `json:"sema_errors"`
	// Diagnostics is populated only under -explain: each message with its
	// machine-readable witness path. Absent otherwise, so default stats
	// output is unchanged.
	Diagnostics []statsDiag `json:"diagnostics,omitempty"`
}

// statsDiag is one diagnostic with its provenance in the -stats-json doc.
type statsDiag struct {
	Pos     string   `json:"pos"`
	Code    string   `json:"code"`
	Msg     string   `json:"msg"`
	Ref     string   `json:"ref,omitempty"`
	Witness []string `json:"witness,omitempty"`
	// Validation fields are present only when -validate tagged the
	// diagnostic: the tag name and the human-readable search outcome.
	Validation       string `json:"validation,omitempty"`
	ValidationDetail string `json:"validation_detail,omitempty"`
}

// writeStatsJSON renders the run's metrics and per-code message counts.
// Map keys serialize in sorted order, so the output is deterministic up to
// the (intentionally volatile) duration fields.
func writeStatsJSON(path string, files []string, fl *flags.Flags, m *obs.Metrics, res *core.Result, explain bool) error {
	snap := m.Snapshot()
	byCode := map[string]int{}
	for c, n := range res.CountByCode() {
		byCode[c.String()] = n
	}
	sortedFiles := append([]string(nil), files...)
	sort.Strings(sortedFiles)
	doc := runStats{
		Schema:           "golclint-stats/v1",
		Files:            sortedFiles,
		Flags:            fl.Map(),
		TotalNS:          snap.TotalNS,
		PhasesNS:         snap.PhasesNS,
		PreprocessWallNS: snap.PreprocessWallNS,
		ParseWallNS:      snap.ParseWallNS,
		CheckWallNS:      snap.CheckWallNS,
		Jobs:             snap.Jobs,
		Counters:         snap.Counters,
		Messages:         len(res.Diags),
		Suppressed:       res.Suppressed,
		ByCode:           byCode,
		ParseErrors:      len(res.ParseErrors),
		SemaErrors:       len(res.SemaErrors),
	}
	if explain {
		for _, d := range res.Diags {
			sd := statsDiag{Pos: d.Pos.String(), Code: d.Code.String(), Msg: d.Msg}
			if d.Prov != nil {
				sd.Ref = d.Prov.Ref
				for _, s := range d.Prov.Steps {
					sd.Witness = append(sd.Witness, s.StepString())
				}
			}
			if d.Validation != nil && d.Validation.Tag != diag.ValidationNone {
				sd.Validation = d.Validation.Tag.String()
				sd.ValidationDetail = d.Validation.Detail
			}
			doc.Diagnostics = append(doc.Diagnostics, sd)
		}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(b, '\n'), 0o644)
}
