// Package cli implements the golclint command: flag parsing, file loading,
// cache wiring, and report rendering. It lives in an internal package (with
// all output directed to caller-supplied writers) so that tests — notably
// the golden-corpus runner — can drive the exact production code path
// without spawning a subprocess.
//
// The package is split along the daemon seam: ParseConfig (config.go) is
// the pure argument parser, Session.Execute (session.go) is everything
// after input loading, and Run below is their one-shot composition. The
// analysis server (internal/server) reuses ParseConfig and a long-lived
// Session so a warm request runs the exact CLI code path.
package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"golclint/internal/atomicio"
	"golclint/internal/cache"
	"golclint/internal/core"
	"golclint/internal/diag"
	"golclint/internal/flags"
	"golclint/internal/library"
	"golclint/internal/obs"
)

// Run executes one golclint invocation, writing diagnostics to stdout and
// errors to stderr. Exit status is 1 when anomalies were reported, 2 on
// usage or I/O errors.
func Run(args []string, stdout, stderr io.Writer) int {
	cfg, err := ParseConfig(args, stderr)
	if err != nil {
		return 2
	}
	return RunConfig(cfg, stdout, stderr)
}

// RunConfig executes one parsed one-shot invocation: load inputs, open the
// on-disk cache if asked, check, render. Each call uses a transient Session
// holding no resident state, so one-shot behavior (and output) is identical
// to what the monolithic Run always produced.
func RunConfig(cfg *Config, stdout, stderr io.Writer) int {
	if cfg.Shard != "" {
		return RunShard(cfg, stdout, stderr)
	}
	files, inc, err := cfg.LoadInputs()
	if err != nil {
		fmt.Fprintf(stderr, "golclint: %v\n", err)
		return 2
	}
	sess, err := sessionFor(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "golclint: %v\n", err)
		return 2
	}
	code, _ := sess.Execute(cfg, files, inc, stdout, stderr)
	return code
}

// sessionFor builds the transient session for one invocation: a disk cache
// when -cache-dir asked (bounded by -cache-max-bytes), a remote layer when
// -remote-cache did. -cfg needs the parsed units, which a cache hit skips
// building, so it disables both layers rather than printing nothing.
func sessionFor(cfg *Config) (*Session, error) {
	sess := &Session{}
	if cfg.ShowCFG != "" {
		return sess, nil
	}
	if cfg.CacheDir != "" {
		c, err := cache.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		c.SetMaxBytes(cfg.CacheMaxBytes)
		sess.disk = c
	}
	if cfg.RemoteCache != "" {
		sess.remote = cache.NewRemoteStore(cfg.RemoteCache)
	}
	return sess, nil
}

// writeLibrary emits the checked program's interface library. On a cache
// hit there is no analyzed Program, but the entry stored the serialized
// library, so the dump works identically warm and cold.
func writeLibrary(path string, res *core.Result, stats bool, stdout, stderr io.Writer) int {
	var data []byte
	var lib *library.Library
	switch {
	case res.Program != nil:
		lib = library.Build(res.Program)
		var buf bytes.Buffer
		if err := lib.Encode(&buf); err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		data = buf.Bytes()
	case len(res.CachedLibrary) > 0:
		data = res.CachedLibrary
		if stats {
			var err error
			if lib, err = library.Decode(bytes.NewReader(data)); err != nil {
				fmt.Fprintf(stderr, "golclint: %v\n", err)
				return 2
			}
		}
	default:
		return 0
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "golclint: %v\n", err)
		return 2
	}
	if stats && lib != nil {
		fmt.Fprintf(stdout, "interface library: %s\n", lib.Stats())
	}
	return 0
}

// runStats is the -stats-json document. The schema field names the format
// so downstream tooling can detect incompatible changes.
type runStats struct {
	Schema  string          `json:"schema"`
	Files   []string        `json:"files"`
	Flags   map[string]bool `json:"flags"`
	TotalNS int64           `json:"total_ns"`
	// PhasesNS sum per-worker time (CPU-like totals under -jobs > 1); the
	// *WallNS fields are the wall-clock times of the per-file preprocess
	// and parse fan-outs and the cfg+check fan-out, and Jobs the worker
	// count, so wall-vs-CPU speedup per region is PhasesNS[region]/wall.
	PhasesNS         map[string]int64 `json:"phases_ns"`
	PreprocessWallNS int64            `json:"preprocess_wall_ns"`
	ParseWallNS      int64            `json:"parse_wall_ns"`
	CheckWallNS      int64            `json:"check_wall_ns"`
	Jobs             int              `json:"jobs"`
	Counters         map[string]int64 `json:"counters"`
	Messages         int              `json:"messages"`
	Suppressed       int              `json:"suppressed"`
	ByCode           map[string]int   `json:"messages_by_code"`
	ParseErrors      int              `json:"parse_errors"`
	SemaErrors       int              `json:"sema_errors"`
	// Diagnostics is populated only under -explain: each message with its
	// machine-readable witness path. Absent otherwise, so default stats
	// output is unchanged.
	Diagnostics []StatsDiag `json:"diagnostics,omitempty"`
	// CacheStores reports per-layer cache counters ("mem", "disk",
	// "remote") for each store layer the run was configured with; absent
	// when the run had no cache.
	CacheStores map[string]cache.StoreStats `json:"cache_stores,omitempty"`
}

// StatsDiag is one diagnostic in the machine-readable wire form shared by
// the -stats-json document and the analysis server's /check responses.
type StatsDiag struct {
	Pos     string   `json:"pos"`
	Code    string   `json:"code"`
	Msg     string   `json:"msg"`
	Ref     string   `json:"ref,omitempty"`
	Witness []string `json:"witness,omitempty"`
	// Validation fields are present only when -validate tagged the
	// diagnostic: the tag name and the human-readable search outcome.
	Validation       string `json:"validation,omitempty"`
	ValidationDetail string `json:"validation_detail,omitempty"`
}

// StatsDiags renders diagnostics into the shared wire form, provenance and
// validation tags included.
func StatsDiags(ds []*diag.Diagnostic) []StatsDiag {
	out := make([]StatsDiag, 0, len(ds))
	for _, d := range ds {
		sd := StatsDiag{Pos: d.Pos.String(), Code: d.Code.String(), Msg: d.Msg}
		if d.Prov != nil {
			sd.Ref = d.Prov.Ref
			for _, s := range d.Prov.Steps {
				sd.Witness = append(sd.Witness, s.StepString())
			}
		}
		if d.Validation != nil && d.Validation.Tag != diag.ValidationNone {
			sd.Validation = d.Validation.Tag.String()
			sd.ValidationDetail = d.Validation.Detail
		}
		out = append(out, sd)
	}
	return out
}

// writeStatsJSON renders the run's metrics and per-code message counts.
// Map keys serialize in sorted order, so the output is deterministic up to
// the (intentionally volatile) duration fields.
func writeStatsJSON(path string, files []string, fl *flags.Flags, m *obs.Metrics, res *core.Result, explain bool, stores map[string]cache.StoreStats) error {
	snap := m.Snapshot()
	byCode := map[string]int{}
	for c, n := range res.CountByCode() {
		byCode[c.String()] = n
	}
	sortedFiles := append([]string(nil), files...)
	sort.Strings(sortedFiles)
	doc := runStats{
		Schema:           "golclint-stats/v1",
		Files:            sortedFiles,
		Flags:            fl.Map(),
		TotalNS:          snap.TotalNS,
		PhasesNS:         snap.PhasesNS,
		PreprocessWallNS: snap.PreprocessWallNS,
		ParseWallNS:      snap.ParseWallNS,
		CheckWallNS:      snap.CheckWallNS,
		Jobs:             snap.Jobs,
		Counters:         snap.Counters,
		Messages:         len(res.Diags),
		Suppressed:       res.Suppressed,
		ByCode:           byCode,
		ParseErrors:      len(res.ParseErrors),
		SemaErrors:       len(res.SemaErrors),
	}
	if explain {
		doc.Diagnostics = StatsDiags(res.Diags)
	}
	if len(stores) > 0 {
		doc.CacheStores = stores
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(b, '\n'), 0o644)
}

// printStatsSummary renders the -stats block: message totals and per-code
// counts in sorted code order.
func printStatsSummary(stdout io.Writer, res *core.Result) {
	counts := res.CountByCode()
	keys := make([]diag.Code, 0, len(counts))
	for c := range counts {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Fprintf(stdout, "%d message(s), %d suppressed\n", len(res.Diags), res.Suppressed)
	for _, c := range keys {
		fmt.Fprintf(stdout, "  %-16s %d\n", c, counts[c])
	}
}
