package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

const fixtureSrc = `extern /*@only@*/ void *malloc(unsigned long);

int leaky (int n)
{
	char *p;
	p = (char *) malloc (10);
	if (n > 0) { p = (char *) 0; }
	return n;
}
`

func writeFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fixture.c")
	if err := os.WriteFile(path, []byte(fixtureSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runCLI invokes Run with buffered writers.
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := Run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCacheDirWarmOutputIdentical(t *testing.T) {
	src := writeFixture(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	for _, jobs := range []int{1, 8} {
		code, cold, coldErr := runCLI(t, "-cache-dir", cacheDir, "-jobs", strconv.Itoa(jobs), src)
		if code != 1 || cold == "" {
			t.Fatalf("jobs=%d cold: exit=%d out=%q", jobs, code, cold)
		}
		code, warm, warmErr := runCLI(t, "-cache-dir", cacheDir, "-jobs", strconv.Itoa(jobs), src)
		if code != 1 {
			t.Fatalf("jobs=%d warm exit = %d", jobs, code)
		}
		if warm != cold || warmErr != coldErr {
			t.Fatalf("jobs=%d warm output differs:\n%q\nvs\n%q", jobs, cold, warm)
		}
	}
}

func TestCacheDirWithoutFlagUnchanged(t *testing.T) {
	src := writeFixture(t)
	_, plain, _ := runCLI(t, src)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	_, cached, _ := runCLI(t, "-cache-dir", cacheDir, src)
	if plain == "" || plain != cached {
		t.Fatalf("cached output differs from plain run:\n%q\nvs\n%q", plain, cached)
	}
}

// -dump-lib must produce an identical library whether the result came from
// a fresh check or a cache replay.
func TestDumpLibOnCacheHit(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "m.c")
	if err := os.WriteFile(src, []byte("int twice (int x) { return x * 2; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")
	coldLib := filepath.Join(dir, "cold.lib")
	warmLib := filepath.Join(dir, "warm.lib")
	if code, _, errOut := runCLI(t, "-cache-dir", cacheDir, "-dump-lib", coldLib, src); code != 0 {
		t.Fatalf("cold exit = %d: %s", code, errOut)
	}
	if code, _, errOut := runCLI(t, "-cache-dir", cacheDir, "-dump-lib", warmLib, src); code != 0 {
		t.Fatalf("warm exit = %d: %s", code, errOut)
	}
	a, err := os.ReadFile(coldLib)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(warmLib)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("library bytes differ across cache hit: %d vs %d bytes", len(a), len(b))
	}

	// The warm library must still work for modular checking.
	use := filepath.Join(dir, "use.c")
	if err := os.WriteFile(use, []byte("extern int twice (int x);\nint use (void) { return twice (21); }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runCLI(t, "-lib", warmLib, use); code != 0 {
		t.Fatalf("modular exit = %d: %s", code, errOut)
	}
}

// -cfg disables the cache (a hit has no parsed units to dump), so the CFG
// dump is present and identical on every run.
func TestCFGWithCacheDir(t *testing.T) {
	src := writeFixture(t)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	_, first, _ := runCLI(t, "-cache-dir", cacheDir, "-cfg", "leaky", src)
	_, second, _ := runCLI(t, "-cache-dir", cacheDir, "-cfg", "leaky", src)
	if first == "" || first != second {
		t.Fatalf("-cfg output unstable under -cache-dir:\n%q\nvs\n%q", first, second)
	}
}
