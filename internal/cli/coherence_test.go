package cli_test

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"golclint/internal/cache"
	"golclint/internal/cli"
	"golclint/internal/server"
	"golclint/internal/testgen"
)

// TestCoherenceWorker is not a test: it is the body of a child process
// re-execed from TestCrossProcessCacheCoherence. It runs one CLI
// invocation with the arguments smuggled through the environment and
// exits with the CLI's exit code before the test framework can print
// anything, so the parent sees exactly the run's stdout.
func TestCoherenceWorker(t *testing.T) {
	if os.Getenv("GOLCLINT_COHERENCE_WORKER") != "1" {
		t.Skip("helper process for TestCrossProcessCacheCoherence")
	}
	args := strings.Split(os.Getenv("GOLCLINT_COHERENCE_ARGS"), "\x1f")
	os.Exit(cli.Run(args, os.Stdout, os.Stderr))
}

// coherenceCorpus materializes a buggy corpus and returns sorted paths.
func coherenceCorpus(t *testing.T, modules int) []string {
	t.Helper()
	dir := t.TempDir()
	bugs := map[testgen.BugKind]int{}
	for _, k := range testgen.AllBugKinds() {
		bugs[k] = modules / 2
	}
	p := testgen.Generate(testgen.Config{Seed: 11, Modules: modules, FuncsPer: 3, Annotate: true, Bugs: bugs})
	for name, src := range p.AllSources() {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var paths []string
	for name := range p.Files {
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Strings(paths)
	return paths
}

// assertCacheDirCoherent opens dir as a cache and demands that every
// on-disk blob decodes as a hit for the key its filename claims: a torn
// or partial write would deframe-fail and read back as a miss.
func assertCacheDirCoherent(t *testing.T, dir string) int {
	t.Helper()
	c, err := cache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries := 0
	shards, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			key := strings.TrimSuffix(f.Name(), ".json")
			if _, ok := c.Get(key); !ok {
				t.Errorf("blob %s/%s does not decode: torn write", sh.Name(), f.Name())
			}
			entries++
		}
	}
	return entries
}

// Two concurrent OS processes checking the same corpus through one shared
// -cache-dir and one shared remote blob server must never corrupt an
// entry or observe a partial write: afterwards every blob in both stores
// decodes cleanly, both runs printed identical diagnostics, and the
// remote server saw traffic from both sides.
func TestCrossProcessCacheCoherence(t *testing.T) {
	paths := coherenceCorpus(t, 10)
	cacheDir := t.TempDir()

	bs, err := server.NewBlob(server.BlobOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(bs.Handler())
	defer srv.Close()

	runWorker := func(stdout *bytes.Buffer, dir string) int {
		args := append([]string{
			"-cache-dir", dir,
			"-remote-cache", srv.URL,
			"-shard", "0/1",
		}, paths...)
		cmd := exec.Command(os.Args[0], "-test.run=TestCoherenceWorker$")
		cmd.Env = append(os.Environ(),
			"GOLCLINT_COHERENCE_WORKER=1",
			"GOLCLINT_COHERENCE_ARGS="+strings.Join(args, "\x1f"))
		cmd.Stdout = stdout
		var errb bytes.Buffer
		cmd.Stderr = &errb
		err := cmd.Run()
		code := cmd.ProcessState.ExitCode()
		if err != nil && code <= 0 {
			t.Errorf("worker failed to run: %v, stderr:\n%s", err, errb.String())
		}
		if code > 1 {
			t.Errorf("worker exit %d, stderr:\n%s", code, errb.String())
		}
		return code
	}

	var out1, out2 bytes.Buffer
	var wg sync.WaitGroup
	codes := make([]int, 2)
	wg.Add(2)
	go func() { defer wg.Done(); codes[0] = runWorker(&out1, cacheDir) }()
	go func() { defer wg.Done(); codes[1] = runWorker(&out2, cacheDir) }()
	wg.Wait()

	if codes[0] != codes[1] {
		t.Errorf("exit codes differ: %d vs %d", codes[0], codes[1])
	}
	if out1.String() != out2.String() {
		t.Errorf("concurrent runs printed different diagnostics:\n--- run 1\n%s\n--- run 2\n%s", out1.String(), out2.String())
	}

	if n := assertCacheDirCoherent(t, cacheDir); n == 0 {
		t.Error("no entries landed in the shared disk cache")
	}
	s := bs.StatsSnapshot()
	if s.Puts == 0 {
		t.Error("no PUTs reached the shared remote store")
	}
	if s.Errors > 0 {
		t.Errorf("remote store rejected %d frames from live workers", s.Errors)
	}
	if n := assertCacheDirCoherent(t, bs.Dir()); n == 0 {
		t.Error("no entries landed in the remote store")
	}

	// A third process with a cold local disk but the warm shared remote
	// must replay entirely from remote GETs and agree byte for byte.
	before := bs.StatsSnapshot().Gets
	var out3 bytes.Buffer
	runWorker(&out3, t.TempDir())
	if out3.String() != out1.String() {
		t.Error("warm replay printed different diagnostics")
	}
	if bs.StatsSnapshot().Gets <= before {
		t.Error("warm process issued no remote GETs")
	}
}

// In-process concurrency over the same shared stores, for the race
// detector's benefit: four goroutines run disjoint shards against one
// cache dir and one remote store inside this process.
func TestConcurrentShardsShareStores(t *testing.T) {
	paths := coherenceCorpus(t, 8)
	cacheDir := t.TempDir()
	bs, err := server.NewBlob(server.BlobOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(bs.Handler())
	defer srv.Close()

	const n = 4
	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			jsonl := filepath.Join(t.TempDir(), "d.jsonl")
			args := append([]string{
				"-cache-dir", cacheDir,
				"-remote-cache", srv.URL,
				"-shard", fmt.Sprintf("%d/%d", i, n),
				"-diag-jsonl", jsonl,
			}, paths...)
			var errb bytes.Buffer
			if code := cli.Run(args, &outs[i], &errb); code > 1 {
				t.Errorf("shard %d exit %d, stderr:\n%s", i, code, errb.String())
			}
		}()
	}
	wg.Wait()
	assertCacheDirCoherent(t, cacheDir)
	assertCacheDirCoherent(t, bs.Dir())
}
