package cli

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"golclint/internal/core"
	"golclint/internal/library"
	"golclint/internal/obs"
)

// Sharded checking (`golclint -shard i/n file.c...`): the positional
// sources are treated as one module each, a stable hash over the module
// name assigns every module to exactly one of n shards, and this process
// checks only shard i's modules — in sorted name order, against the shared
// interface library (-lib) and the shared cache stack (-cache-dir,
// -remote-cache). Workers never talk to each other: the partition is a
// pure function of the name set, so n processes launched with the same
// argument vector and different i cover every module exactly once and
// coordinate only through the cache.
//
// Determinism contract: the concatenation of all shards' outputs, merged in
// module-name order (or the sorted merge of their -diag-jsonl streams), is
// byte-identical to `-shard 0/1` — the single-process run, which uses this
// same per-module loop. The hash never changes between versions; changing
// it would silently re-partition fleets mid-rollout.

// ParseShard parses a -shard "i/n" spec.
func ParseShard(s string) (index, count int, err error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("shard spec %q: want i/n", s)
	}
	index, err = strconv.Atoi(s[:slash])
	if err != nil {
		return 0, 0, fmt.Errorf("shard spec %q: bad index", s)
	}
	count, err = strconv.Atoi(s[slash+1:])
	if err != nil {
		return 0, 0, fmt.Errorf("shard spec %q: bad count", s)
	}
	if count < 1 || index < 0 || index >= count {
		return 0, 0, fmt.Errorf("shard spec %q: want 0 <= i < n", s)
	}
	return index, count, nil
}

// ShardOf assigns a module name to a shard: FNV-1a over the name, mod n.
// FNV-1a is stable across platforms and Go versions, which is the property
// the partition needs (crypto strength is not: a skewed adversarial name
// set only unbalances load, never correctness).
func ShardOf(name string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	io.WriteString(h, name)
	return int(h.Sum32() % uint32(n))
}

// RunShard executes one shard worker. Flags that assume a single whole-run
// artifact (-cfg, -dump-lib, -trace, -trace-out, -hot, -cpuprofile,
// -memprofile) are rejected: their outputs are per-module and would
// overwrite each other.
func RunShard(cfg *Config, stdout, stderr io.Writer) int {
	index, count, err := ParseShard(cfg.Shard)
	if err != nil {
		fmt.Fprintf(stderr, "golclint: %v\n", err)
		return 2
	}
	for flag, val := range map[string]string{
		"-cfg": cfg.ShowCFG, "-dump-lib": cfg.DumpLib,
		"-trace": cfg.TracePath, "-trace-out": cfg.TraceOut,
		"-cpuprofile": cfg.CPUProfile, "-memprofile": cfg.MemProfile,
	} {
		if val != "" {
			fmt.Fprintf(stderr, "golclint: %s is not supported with -shard\n", flag)
			return 2
		}
	}
	if cfg.HotN > 0 {
		fmt.Fprintln(stderr, "golclint: -hot is not supported with -shard")
		return 2
	}

	// Partition: one positional path = one module, named by base name.
	// Sorted module-name order fixes the emission order within the shard.
	type module struct{ name, path string }
	var mine []module
	seen := map[string]string{}
	for _, p := range cfg.Paths {
		name := filepath.Base(p)
		if prev, dup := seen[name]; dup {
			fmt.Fprintf(stderr, "golclint: duplicate module name %q (%s and %s)\n", name, prev, p)
			return 2
		}
		seen[name] = p
		if ShardOf(name, count) == index {
			mine = append(mine, module{name: name, path: p})
		}
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i].name < mine[j].name })

	sess, err := sessionFor(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "golclint: %v\n", err)
		return 2
	}

	// The interface library loads once and is shared by every module check,
	// exactly as the batched server path does.
	var lib *library.Library
	if cfg.LoadLib != "" {
		f, err := os.Open(cfg.LoadLib)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		lib, err = library.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
	}

	var jsonlWriter *DiagJSONLWriter
	var jsonlBuf *bufio.Writer
	var jsonlFile *os.File
	if cfg.DiagJSONL != "" {
		f, err := os.Create(cfg.DiagJSONL)
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		jsonlFile = f
		jsonlBuf = bufio.NewWriter(f)
		jsonlWriter = NewDiagJSONLWriter(jsonlBuf, "", diagRenderMode(cfg.Explain, cfg.Validate))
	}

	metrics := cfg.Metrics
	if metrics == nil && (cfg.Stats || cfg.StatsJSON != "") {
		metrics = obs.New()
	}

	// agg accumulates the whole shard's outcome for -stats/-stats-json.
	agg := &core.Result{}
	exit := 0
	for _, mod := range mine {
		mcfg := *cfg
		mcfg.Paths = []string{mod.path}
		mcfg.Shard, mcfg.DiagJSONL, mcfg.StatsJSON = "", "", ""
		mcfg.Stats = false
		mcfg.Lib = lib
		mcfg.Metrics = metrics
		if jsonlWriter != nil {
			jsonlWriter.SetModule(mod.name)
			mcfg.DiagSink = jsonlWriter.Sink
		}
		files, inc, err := mcfg.LoadInputs()
		if err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
		code, res := sess.Execute(&mcfg, files, inc, stdout, stderr)
		if code > exit {
			exit = code
		}
		if res != nil {
			agg.Diags = append(agg.Diags, res.Diags...)
			agg.Suppressed += res.Suppressed
			agg.ParseErrors = append(agg.ParseErrors, res.ParseErrors...)
			agg.SemaErrors = append(agg.SemaErrors, res.SemaErrors...)
		}
	}

	if jsonlWriter != nil {
		err := jsonlBuf.Flush()
		if cerr := jsonlFile.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = jsonlWriter.Err()
		}
		if err != nil {
			fmt.Fprintf(stderr, "golclint: diag-jsonl: %v\n", err)
			return 2
		}
	}

	if cfg.Stats {
		printStatsSummary(stdout, agg)
	}
	if cfg.StatsJSON != "" {
		names := make([]string, 0, len(mine))
		for _, mod := range mine {
			names = append(names, mod.path)
		}
		if err := writeStatsJSON(cfg.StatsJSON, names, cfg.Flags, metrics, agg, cfg.Explain || cfg.Validate, sess.LayerStats()); err != nil {
			fmt.Fprintf(stderr, "golclint: %v\n", err)
			return 2
		}
	}
	return exit
}
