package flags

import (
	"strings"
	"testing"
)

func TestDefault(t *testing.T) {
	f := Default()
	if !f.NullChecking || !f.DefChecking || !f.AllocChecking || !f.AliasChecking {
		t.Fatal("default checks should be on")
	}
	if !f.ImplicitOnly || f.GCMode || f.IndependentIndexes {
		t.Fatal("default modes wrong")
	}
}

func TestSet(t *testing.T) {
	f := Default()
	if err := f.Set("-allimponly"); err != nil {
		t.Fatal(err)
	}
	if f.ImplicitOnly {
		t.Fatal("allimponly not disabled")
	}
	if err := f.Set("+gcmode"); err != nil {
		t.Fatal(err)
	}
	if !f.GCMode {
		t.Fatal("gcmode not enabled")
	}
}

func TestSetErrors(t *testing.T) {
	f := Default()
	for _, bad := range []string{"", "x", "allimponly", "+bogus", "~null"} {
		if err := f.Set(bad); err == nil {
			t.Errorf("Set(%q) succeeded", bad)
		}
	}
}

func TestSetAll(t *testing.T) {
	f := Default()
	if err := f.SetAll("-null", "-def", "+indepidx"); err != nil {
		t.Fatal(err)
	}
	if f.NullChecking || f.DefChecking || !f.IndependentIndexes {
		t.Fatal("SetAll did not apply")
	}
	if err := f.SetAll("-null", "+bogus"); err == nil {
		t.Fatal("SetAll should fail on bogus")
	}
}

func TestCloneIndependent(t *testing.T) {
	f := Default()
	g := f.Clone()
	g.NullChecking = false
	if !f.NullChecking {
		t.Fatal("Clone aliases")
	}
}

func TestKnownAndString(t *testing.T) {
	ks := Known()
	if len(ks) != 7 {
		t.Fatalf("Known = %v", ks)
	}
	s := Default().String()
	if !strings.Contains(s, "+null") || !strings.Contains(s, "-gcmode") {
		t.Fatalf("String = %q", s)
	}
}

// Map must cover exactly the names Set accepts and reflect toggles.
func TestMapMirrorsSet(t *testing.T) {
	f := Default()
	m := f.Map()
	if len(m) != len(Known()) {
		t.Fatalf("Map has %d entries, Known has %d", len(m), len(Known()))
	}
	for _, name := range Known() {
		if _, ok := m[name]; !ok {
			t.Fatalf("Map missing flag %q", name)
		}
	}
	if !m["null"] || m["gcmode"] {
		t.Fatalf("defaults wrong: %v", m)
	}
	if err := f.SetAll("-null", "+gcmode"); err != nil {
		t.Fatal(err)
	}
	m = f.Map()
	if m["null"] || !m["gcmode"] {
		t.Fatalf("Map did not track Set: %v", m)
	}
}
