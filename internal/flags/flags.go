// Package flags holds the checker's configuration, mirroring the flag
// system the paper describes: per-class check toggles, implicit-annotation
// defaults (e.g. -allimponly used in Section 6), garbage-collection mode,
// and local flag toggles written as /*@+flag@*/ or /*@-flag@*/ comments.
package flags

import (
	"fmt"
	"sort"
	"strings"
)

// Flags is the checker configuration. The zero value is NOT meaningful;
// use Default.
type Flags struct {
	// Check classes.
	NullChecking  bool // null-pointer dereference/assignment checking
	DefChecking   bool // definition (use-before-def, completeness) checking
	AllocChecking bool // allocation (leak, use-after-release) checking
	AliasChecking bool // unique/exposure aliasing checking

	// Implicit annotations. The paper: "The interpretation of a
	// declaration with no null pointer or definition annotation is chosen
	// so that [they] place the strictest constraints on actual
	// parameters and return values"; unqualified formal parameters are
	// temp; implicit only applies to return values, globals and fields
	// unless -allimponly.
	ImplicitOnly bool // implicit only on returns/globals/struct fields

	// GCMode disables checks that are irrelevant when a garbage collector
	// reclaims storage (leaks, missing releases).
	GCMode bool

	// IndependentIndexes treats compile-time-unknown array indexes as
	// independent elements rather than the same element (paper §2).
	IndependentIndexes bool

	// MaxMessages bounds the number of reported diagnostics (0 = no
	// bound).
	MaxMessages int
}

// Default returns the paper's default configuration: every check on,
// implicit only on, GC mode off.
func Default() *Flags {
	return &Flags{
		NullChecking:  true,
		DefChecking:   true,
		AllocChecking: true,
		AliasChecking: true,
		ImplicitOnly:  true,
	}
}

// Clone returns a copy of f.
func (f *Flags) Clone() *Flags {
	g := *f
	return &g
}

// names maps flag spellings (as used in +name/-name toggles) to setters.
var names = map[string]func(*Flags, bool){
	"null":       func(f *Flags, v bool) { f.NullChecking = v },
	"def":        func(f *Flags, v bool) { f.DefChecking = v },
	"alloc":      func(f *Flags, v bool) { f.AllocChecking = v },
	"alias":      func(f *Flags, v bool) { f.AliasChecking = v },
	"allimponly": func(f *Flags, v bool) { f.ImplicitOnly = v },
	"gcmode":     func(f *Flags, v bool) { f.GCMode = v },
	"indepidx":   func(f *Flags, v bool) { f.IndependentIndexes = v },
}

// Known returns the sorted list of recognized flag names.
func Known() []string {
	var ns []string
	for n := range names {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Set applies one toggle: "+name" enables, "-name" disables. It returns an
// error for unknown names or malformed toggles.
func (f *Flags) Set(toggle string) error {
	t := strings.TrimSpace(toggle)
	if len(t) < 2 || (t[0] != '+' && t[0] != '-') {
		return fmt.Errorf("malformed flag toggle %q (want +name or -name)", toggle)
	}
	set, ok := names[t[1:]]
	if !ok {
		return fmt.Errorf("unknown flag %q (known: %s)", t[1:], strings.Join(Known(), ", "))
	}
	set(f, t[0] == '+')
	return nil
}

// SetAll applies a sequence of toggles, stopping at the first error.
func (f *Flags) SetAll(toggles ...string) error {
	for _, t := range toggles {
		if err := f.Set(t); err != nil {
			return err
		}
	}
	return nil
}

// Map returns the current toggle values keyed by flag name (the same names
// Set accepts), for machine-readable stats output.
func (f *Flags) Map() map[string]bool {
	return map[string]bool{
		"null":       f.NullChecking,
		"def":        f.DefChecking,
		"alloc":      f.AllocChecking,
		"alias":      f.AliasChecking,
		"allimponly": f.ImplicitOnly,
		"gcmode":     f.GCMode,
		"indepidx":   f.IndependentIndexes,
	}
}

// Fingerprint returns the complete configuration identity: the String()
// toggles plus the message bound, which String omits. The analysis cache
// keys on it, so every field that can change a run's diagnostics must
// appear here.
func (f *Flags) Fingerprint() string {
	return fmt.Sprintf("%s max=%d", f.String(), f.MaxMessages)
}

// String summarizes the configuration.
func (f *Flags) String() string {
	onoff := func(b bool) string {
		if b {
			return "+"
		}
		return "-"
	}
	return fmt.Sprintf("%snull %sdef %salloc %salias %sallimponly %sgcmode %sindepidx",
		onoff(f.NullChecking), onoff(f.DefChecking), onoff(f.AllocChecking),
		onoff(f.AliasChecking), onoff(f.ImplicitOnly), onoff(f.GCMode),
		onoff(f.IndependentIndexes))
}
