// Package diag collects, suppresses, sorts, and formats the checker's
// diagnostics. Messages follow the paper's two-level format: a primary
// line locating the anomaly, plus indented secondary notes explaining how
// the offending state arose, e.g.
//
//	sample.c:6: Function returns with non-null global gname referencing null storage
//	   sample.c:5: Storage gname may become null
//
// Suppression uses the paper's stylized comments: /*@i@*/ suppresses the
// next message on or after that line; /*@ignore@*/ ... /*@end@*/ suppresses
// every message in the region.
package diag

import (
	"fmt"
	"sort"
	"strings"

	"golclint/internal/ctoken"
)

// Code classifies a diagnostic. Codes are stable and name the anomaly
// classes from the paper.
type Code int

// Diagnostic codes.
const (
	// Null pointer anomalies (§4.1).
	NullDeref  Code = iota // dereference of possibly-null pointer
	NullPass               // possibly-null passed where non-null expected
	NullAssign             // possibly-null assigned to non-null reference
	NullReturn             // function may return null / exit with null global

	// Definition anomalies (§4.2).
	UseUndef      // undefined storage used as an rvalue
	IncompleteDef // storage not completely defined at interface point

	// Allocation anomalies (§4.3).
	Leak          // only storage not released before reference lost
	UseDead       // use of storage after obligation transferred (dead pointer)
	DoubleRelease // release obligation discharged twice
	AliasTransfer // temp/dependent storage transferred as only (paper's second sample.c message)
	Confluence    // inconsistent allocation states at a merge point
	LeakReturn    // fresh storage returned without only annotation

	// Aliasing and exposure anomalies (§4.4).
	UniqueAliased // unique parameter aliased by another parameter/global
	ObserverMod   // observer storage modified
	Exposure      // internal state exposed

	// Annotation/semantic problems.
	AnnotConflict  // incompatible annotations
	AnnotPlacement // annotation in an invalid position
	TypeError      // type mismatch
	UnknownName    // reference to undeclared identifier
	DeadCode       // statements not reachable from the function entry

	numCodes
)

var codeNames = map[Code]string{
	NullDeref: "nullderef", NullPass: "nullpass", NullAssign: "nullassign",
	NullReturn: "nullreturn", UseUndef: "usedef", IncompleteDef: "compdef",
	Leak: "mustfree", UseDead: "usereleased", DoubleRelease: "doublerelease",
	AliasTransfer: "aliastransfer", Confluence: "branchstate",
	LeakReturn: "mustfreereturn", UniqueAliased: "aliasunique",
	ObserverMod: "observermod", Exposure: "exposure",
	AnnotConflict: "annotconflict", AnnotPlacement: "annotplace",
	TypeError: "type", UnknownName: "unknown", DeadCode: "unreachable",
}

// String returns the code's short name (used in message suffixes and
// category counts).
func (c Code) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("code(%d)", int(c))
}

// codeByName is the reverse of codeNames, for parsing machine-readable
// output back into Codes.
var codeByName = func() map[string]Code {
	m := make(map[string]Code, len(codeNames))
	for c, n := range codeNames {
		m[n] = c
	}
	return m
}()

// Codes returns every diagnostic code in declaration order. The -stats,
// -stats-json, and trace surfaces all key on these codes' String() names,
// which are stable and unique (asserted by TestCodeNamesRoundTrip).
func Codes() []Code {
	cs := make([]Code, 0, int(numCodes))
	for c := Code(0); c < numCodes; c++ {
		cs = append(cs, c)
	}
	return cs
}

// ParseCode resolves a short name (as printed by String and used as a JSON
// key) back to its Code.
func ParseCode(name string) (Code, bool) {
	c, ok := codeByName[name]
	return c, ok
}

// MarshalText implements encoding.TextMarshaler so Codes serialize by name
// (including as JSON map keys).
func (c Code) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (c *Code) UnmarshalText(b []byte) error {
	parsed, ok := ParseCode(string(b))
	if !ok {
		return fmt.Errorf("unknown diagnostic code %q", b)
	}
	*c = parsed
	return nil
}

// Note is a secondary location attached to a diagnostic.
type Note struct {
	Pos ctoken.Pos
	Msg string
}

// ProvStep is one step of a witness path: a position, a stable step kind,
// and a human-readable message. The kinds are part of the machine-readable
// surface (the planned replay engine keys on them), so existing spellings
// must not change:
//
//	entry   — the function whose analysis emitted the diagnostic
//	path    — the CFG block path from entry to the report site
//	branch  — a branch decision taken at a split
//	decl    — declaration of the implicated ref
//	alloc   — the ref acquired a release obligation (fresh or annotated)
//	release — the obligation was discharged (ref became dead)
//	null    — the ref may have become null
//	bind    — the ref was bound/assigned a new object
type ProvStep struct {
	Pos  ctoken.Pos
	Kind string
	Msg  string
}

// Provenance is the witness the checker followed to a diagnostic: the CFG
// block path, the branch decisions at each split, and the state transitions
// of the implicated ref. Recorded only under -explain; Diagnostic.String
// ignores it, so default output is byte-identical with or without it.
type Provenance struct {
	Ref   string // display name of the implicated reference ("" if none)
	Steps []ProvStep
}

// ValidationTag classifies the outcome of replaying a diagnostic's witness
// path through the instrumented interpreter (-validate). The names are part
// of the machine-readable surface (stats-json, JSONL trace, cache entries),
// so existing spellings must not change.
type ValidationTag int

// Validation outcomes.
const (
	// ValidationNone marks a diagnostic that was never validated (the
	// zero value; such diagnostics carry no Validation record at all).
	ValidationNone ValidationTag = iota
	// Confirmed: the interpreter reproduced the matching run-time fault at
	// the witness line from a generated input.
	Confirmed
	// Unreproduced: the search budget was exhausted without reproducing
	// the fault (or the anomaly has no run-time manifestation to replay).
	Unreproduced
	// PathInfeasible: no generated input ever reached the fault site, so
	// the witness path was never driven to completion.
	PathInfeasible
)

var validationNames = map[ValidationTag]string{
	ValidationNone: "none", Confirmed: "confirmed",
	Unreproduced: "unreproduced", PathInfeasible: "path-infeasible",
}

// String returns the tag's stable name.
func (t ValidationTag) String() string {
	if s, ok := validationNames[t]; ok {
		return s
	}
	return fmt.Sprintf("validation(%d)", int(t))
}

// ParseValidationTag resolves a stable tag name back to its value.
func ParseValidationTag(name string) (ValidationTag, bool) {
	for t, n := range validationNames {
		if n == name {
			return t, true
		}
	}
	return ValidationNone, false
}

// MarshalText implements encoding.TextMarshaler.
func (t ValidationTag) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (t *ValidationTag) UnmarshalText(b []byte) error {
	parsed, ok := ParseValidationTag(string(b))
	if !ok {
		return fmt.Errorf("unknown validation tag %q", b)
	}
	*t = parsed
	return nil
}

// Validation records the outcome of counterexample validation for one
// diagnostic: the tag plus a human-readable detail line (the reproducing
// harness input, or why no input reproduced the fault).
type Validation struct {
	Tag    ValidationTag
	Detail string
}

// Diagnostic is one reported anomaly.
type Diagnostic struct {
	Code  Code
	Pos   ctoken.Pos
	Msg   string
	Notes []Note
	// Prov is the optional witness path (-explain). It is excluded from
	// String, carried through the cache wire format, and compared by Equal.
	Prov *Provenance
	// Validation is the optional counterexample-validation outcome
	// (-validate). Like Prov it is excluded from String, carried through
	// the cache wire format, and compared by Equal.
	Validation *Validation
}

// WithNote appends a secondary note and returns d for chaining.
func (d *Diagnostic) WithNote(pos ctoken.Pos, format string, args ...interface{}) *Diagnostic {
	if d == nil {
		return nil
	}
	d.Notes = append(d.Notes, Note{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	return d
}

// String formats the diagnostic in the paper's style.
func (d *Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", d.Pos, d.Msg)
	for _, n := range d.Notes {
		fmt.Fprintf(&b, "\n   %s: %s", n.Pos, n.Msg)
	}
	return b.String()
}

// StepString renders one witness step in the stable "pos: [kind] msg" form
// shared by -explain output and the JSONL diag events.
func (s ProvStep) StepString() string {
	if !s.Pos.IsValid() {
		return fmt.Sprintf("[%s] %s", s.Kind, s.Msg)
	}
	return fmt.Sprintf("%s: [%s] %s", s.Pos, s.Kind, s.Msg)
}

// ValidationString renders the diagnostic's validation line ("" when the
// diagnostic was never validated), in the stable form shared by -validate
// output and Explain.
func (d *Diagnostic) ValidationString() string {
	if d.Validation == nil || d.Validation.Tag == ValidationNone {
		return ""
	}
	if d.Validation.Detail == "" {
		return fmt.Sprintf("validation: %s", d.Validation.Tag)
	}
	return fmt.Sprintf("validation: %s — %s", d.Validation.Tag, d.Validation.Detail)
}

// Validated formats the diagnostic with its validation line appended (the
// -validate surface). Identical to String when no validation was recorded.
func (d *Diagnostic) Validated() string {
	var b strings.Builder
	b.WriteString(d.String())
	if v := d.ValidationString(); v != "" {
		fmt.Fprintf(&b, "\n   %s", v)
	}
	return b.String()
}

// Explain formats the diagnostic with its witness path appended, one
// indented step per line, followed by the validation line when the
// diagnostic was validated. Without provenance or validation it is
// identical to String.
func (d *Diagnostic) Explain() string {
	var b strings.Builder
	b.WriteString(d.String())
	if d.Prov != nil && len(d.Prov.Steps) > 0 {
		if d.Prov.Ref != "" {
			fmt.Fprintf(&b, "\n   witness (%s):", d.Prov.Ref)
		} else {
			b.WriteString("\n   witness:")
		}
		for _, s := range d.Prov.Steps {
			fmt.Fprintf(&b, "\n      %s", s.StepString())
		}
	}
	if v := d.ValidationString(); v != "" {
		fmt.Fprintf(&b, "\n   %s", v)
	}
	return b.String()
}

// Region is a suppressed source region (from /*@ignore@*/ ... /*@end@*/).
type Region struct {
	File     string
	FromLine int
	ToLine   int // inclusive; 1<<30 if unterminated
}

// classOf maps local-flag names to the diagnostic codes they gate (the
// same classes as the global flags in internal/flags).
var classOf = map[string][]Code{
	"null":  {NullDeref, NullPass, NullAssign, NullReturn},
	"def":   {UseUndef, IncompleteDef},
	"alloc": {Leak, UseDead, DoubleRelease, AliasTransfer, Confluence, LeakReturn},
	"alias": {UniqueAliased, ObserverMod, Exposure},
}

// offSpan is a region of one file where a message class is disabled by a
// local /*@-name@*/ ... /*@+name@*/ toggle.
type offSpan struct {
	file     string
	fromLine int
	toLine   int
	codes    []Code
}

// Reporter accumulates diagnostics and applies suppression.
type Reporter struct {
	diags      []*Diagnostic
	suppressed int
	offSpans   []offSpan

	// iLines holds file:line keys carrying an /*@i@*/ marker: the next
	// message reported for that line or the following one is dropped.
	iLines map[string]bool
	// regions holds ignore/end spans.
	regions []Region
	// max bounds the number of retained diagnostics (0 = unbounded).
	max int
}

// NewReporter returns an empty reporter. maxMessages bounds retained
// diagnostics (0 for unbounded).
func NewReporter(maxMessages int) *Reporter {
	return &Reporter{iLines: map[string]bool{}, max: maxMessages}
}

// Control mirrors a parsed checker-control comment ("i", "ignore", "end",
// or a flag toggle) with its position.
type Control struct {
	Pos  ctoken.Pos
	Text string
}

// AddSuppressions installs the control comments collected by the parser:
// message suppression ("i", "ignore"/"end") and local flag toggles
// ("-name" disables a message class from its line until a matching
// "+name" in the same file, per §2's "an LCLint flag that may be set
// locally").
func (r *Reporter) AddSuppressions(controls []Control) {
	var open []Region
	openFlags := map[string]*offSpan{} // keyed file+"|"+name
	for _, c := range controls {
		switch {
		case c.Text == "i":
			r.iLines[fmt.Sprintf("%s:%d", c.Pos.File, c.Pos.Line)] = true
		case c.Text == "ignore":
			open = append(open, Region{File: c.Pos.File, FromLine: c.Pos.Line, ToLine: 1 << 30})
		case c.Text == "end":
			if len(open) > 0 {
				open[len(open)-1].ToLine = c.Pos.Line
				r.regions = append(r.regions, open[len(open)-1])
				open = open[:len(open)-1]
			}
		case len(c.Text) > 1 && c.Text[0] == '-':
			name := c.Text[1:]
			if codes, ok := classOf[name]; ok {
				sp := &offSpan{file: c.Pos.File, fromLine: c.Pos.Line, toLine: 1 << 30, codes: codes}
				openFlags[c.Pos.File+"\x00"+name] = sp
				r.offSpans = append(r.offSpans, *sp)
			}
		case len(c.Text) > 1 && c.Text[0] == '+':
			name := c.Text[1:]
			if _, ok := classOf[name]; ok {
				key := c.Pos.File + "\x00" + name
				if sp, isOpen := openFlags[key]; isOpen {
					// Close the most recent span for this flag/file.
					for i := len(r.offSpans) - 1; i >= 0; i-- {
						if r.offSpans[i].file == sp.file && r.offSpans[i].fromLine == sp.fromLine &&
							r.offSpans[i].toLine == 1<<30 {
							r.offSpans[i].toLine = c.Pos.Line
							break
						}
					}
					delete(openFlags, key)
				}
			}
		}
	}
	r.regions = append(r.regions, open...)
}

// MarkILine registers an /*@i@*/ marker directly (used by tests).
func (r *Reporter) MarkILine(file string, line int) {
	r.iLines[fmt.Sprintf("%s:%d", file, line)] = true
}

// AddRegion registers an ignore region directly.
func (r *Reporter) AddRegion(reg Region) { r.regions = append(r.regions, reg) }

// classOff reports whether code is disabled at pos by a local flag toggle.
func (r *Reporter) classOff(code Code, pos ctoken.Pos) bool {
	for _, sp := range r.offSpans {
		if sp.file != pos.File || pos.Line < sp.fromLine || pos.Line > sp.toLine {
			continue
		}
		for _, c := range sp.codes {
			if c == code {
				return true
			}
		}
	}
	return false
}

// isSuppressed reports whether a message at pos should be dropped, and
// consumes one-shot /*@i@*/ markers.
func (r *Reporter) isSuppressed(pos ctoken.Pos) bool {
	for _, reg := range r.regions {
		if reg.File == pos.File && pos.Line >= reg.FromLine && pos.Line <= reg.ToLine {
			return true
		}
	}
	// /*@i@*/ on the same line or the line before the anomaly.
	for _, ln := range []int{pos.Line, pos.Line - 1} {
		key := fmt.Sprintf("%s:%d", pos.File, ln)
		if r.iLines[key] {
			delete(r.iLines, key)
			return true
		}
	}
	return false
}

// Report files a diagnostic unless suppressed; it returns the diagnostic
// (nil if suppressed or over the message bound) for attaching notes.
func (r *Reporter) Report(code Code, pos ctoken.Pos, format string, args ...interface{}) *Diagnostic {
	if r.isSuppressed(pos) || r.classOff(code, pos) {
		r.suppressed++
		return nil
	}
	if r.max > 0 && len(r.diags) >= r.max {
		r.suppressed++
		return nil
	}
	d := &Diagnostic{Code: code, Pos: pos, Msg: fmt.Sprintf(format, args...)}
	r.diags = append(r.diags, d)
	return d
}

// Compare orders diagnostics by the stable sort key (file, line, column,
// code, message). It is the single ordering used everywhere diagnostics are
// sorted or merged, so serial and parallel runs render byte-identical
// output.
func Compare(a, b *Diagnostic) int {
	if a.Pos != b.Pos {
		if a.Pos.Before(b.Pos) {
			return -1
		}
		return 1
	}
	if a.Code != b.Code {
		if a.Code < b.Code {
			return -1
		}
		return 1
	}
	return strings.Compare(a.Msg, b.Msg)
}

// Sort stably sorts diagnostics by the Compare key.
func Sort(ds []*Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool { return Compare(ds[i], ds[j]) < 0 })
}

// Diags returns the retained diagnostics sorted by position then code.
func (r *Reporter) Diags() []*Diagnostic {
	Sort(r.diags)
	return r.diags
}

// Buffered returns the retained diagnostics in report (arrival) order,
// without sorting. The parallel checking engine uses per-worker reporters
// as ordered buffers and replays them into the run's main reporter.
func (r *Reporter) Buffered() []*Diagnostic { return r.diags }

// Len returns the number of retained diagnostics.
func (r *Reporter) Len() int { return len(r.diags) }

// Suppressed returns the number of messages dropped by suppression or the
// message bound.
func (r *Reporter) Suppressed() int { return r.suppressed }

// CountByCode tallies retained diagnostics per code.
func (r *Reporter) CountByCode() map[Code]int {
	m := map[Code]int{}
	for _, d := range r.diags {
		m[d.Code]++
	}
	return m
}

// Format renders all diagnostics, one per paragraph, in source order.
func (r *Reporter) Format() string {
	var b strings.Builder
	for _, d := range r.Diags() {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
