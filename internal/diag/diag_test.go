package diag

import (
	"strings"
	"testing"

	"golclint/internal/ctoken"
)

func pos(file string, line int) ctoken.Pos { return ctoken.Pos{File: file, Line: line, Col: 1} }

func TestReportAndFormat(t *testing.T) {
	r := NewReporter(0)
	d := r.Report(NullReturn, pos("sample.c", 6),
		"Function returns with non-null global %s referencing null storage", "gname")
	d.WithNote(pos("sample.c", 5), "Storage %s may become null", "gname")
	want := "sample.c:6: Function returns with non-null global gname referencing null storage\n" +
		"   sample.c:5: Storage gname may become null\n"
	if got := r.Format(); got != want {
		t.Fatalf("Format:\n%q\nwant:\n%q", got, want)
	}
}

func TestSortOrder(t *testing.T) {
	r := NewReporter(0)
	r.Report(Leak, pos("b.c", 2), "second")
	r.Report(NullDeref, pos("a.c", 9), "first-file")
	r.Report(NullDeref, pos("b.c", 1), "first-line")
	ds := r.Diags()
	if ds[0].Msg != "first-file" || ds[1].Msg != "first-line" || ds[2].Msg != "second" {
		t.Fatalf("order: %v %v %v", ds[0].Msg, ds[1].Msg, ds[2].Msg)
	}
}

func TestILineSuppression(t *testing.T) {
	r := NewReporter(0)
	r.MarkILine("x.c", 4)
	if d := r.Report(Leak, pos("x.c", 4), "suppressed same line"); d != nil {
		t.Fatal("not suppressed on same line")
	}
	// Marker is one-shot.
	if d := r.Report(Leak, pos("x.c", 4), "second"); d == nil {
		t.Fatal("marker should be consumed")
	}
	// Marker on preceding line.
	r.MarkILine("x.c", 7)
	if d := r.Report(Leak, pos("x.c", 8), "suppressed next line"); d != nil {
		t.Fatal("not suppressed on following line")
	}
	if r.Suppressed() != 2 {
		t.Fatalf("suppressed = %d", r.Suppressed())
	}
}

func TestRegionSuppression(t *testing.T) {
	r := NewReporter(0)
	r.AddSuppressions([]Control{
		{Pos: pos("y.c", 10), Text: "ignore"},
		{Pos: pos("y.c", 20), Text: "end"},
	})
	if r.Report(UseDead, pos("y.c", 15), "inside") != nil {
		t.Fatal("inside region not suppressed")
	}
	if r.Report(UseDead, pos("y.c", 21), "after") == nil {
		t.Fatal("after region suppressed")
	}
	if r.Report(UseDead, pos("z.c", 15), "other file") == nil {
		t.Fatal("other file suppressed")
	}
}

func TestUnterminatedRegion(t *testing.T) {
	r := NewReporter(0)
	r.AddSuppressions([]Control{{Pos: pos("y.c", 3), Text: "ignore"}})
	if r.Report(Leak, pos("y.c", 9999), "way later") != nil {
		t.Fatal("unterminated region should suppress to EOF")
	}
}

func TestNestedRegions(t *testing.T) {
	r := NewReporter(0)
	r.AddSuppressions([]Control{
		{Pos: pos("n.c", 1), Text: "ignore"},
		{Pos: pos("n.c", 3), Text: "ignore"},
		{Pos: pos("n.c", 5), Text: "end"},
		{Pos: pos("n.c", 9), Text: "end"},
	})
	for _, ln := range []int{2, 4, 6, 8} {
		if r.Report(Leak, pos("n.c", ln), "in") != nil {
			t.Errorf("line %d not suppressed", ln)
		}
	}
	if r.Report(Leak, pos("n.c", 10), "out") == nil {
		t.Error("line 10 suppressed")
	}
}

func TestISuppressionViaControls(t *testing.T) {
	r := NewReporter(0)
	r.AddSuppressions([]Control{{Pos: pos("i.c", 5), Text: "i"}})
	if r.Report(Leak, pos("i.c", 5), "x") != nil {
		t.Fatal("i control ineffective")
	}
}

func TestMaxMessages(t *testing.T) {
	r := NewReporter(2)
	r.Report(Leak, pos("m.c", 1), "a")
	r.Report(Leak, pos("m.c", 2), "b")
	if r.Report(Leak, pos("m.c", 3), "c") != nil {
		t.Fatal("over-limit message retained")
	}
	if r.Len() != 2 || r.Suppressed() != 1 {
		t.Fatalf("len=%d suppressed=%d", r.Len(), r.Suppressed())
	}
}

func TestCountByCode(t *testing.T) {
	r := NewReporter(0)
	r.Report(Leak, pos("c.c", 1), "l1")
	r.Report(Leak, pos("c.c", 2), "l2")
	r.Report(NullDeref, pos("c.c", 3), "n")
	m := r.CountByCode()
	if m[Leak] != 2 || m[NullDeref] != 1 {
		t.Fatalf("counts = %v", m)
	}
}

func TestCodeString(t *testing.T) {
	if NullDeref.String() != "nullderef" || Leak.String() != "mustfree" {
		t.Fatal("code names")
	}
	if Code(999).String() != "code(999)" {
		t.Fatal("unknown code name")
	}
	for c := Code(0); c < numCodes; c++ {
		if strings.HasPrefix(c.String(), "code(") {
			t.Errorf("code %d unnamed", c)
		}
	}
}

func TestNilDiagnosticWithNote(t *testing.T) {
	var d *Diagnostic
	if d.WithNote(pos("x.c", 1), "note") != nil {
		t.Fatal("nil WithNote should return nil")
	}
}

func TestLocalFlagToggle(t *testing.T) {
	r := NewReporter(0)
	r.AddSuppressions([]Control{
		{Pos: pos("f.c", 10), Text: "-alloc"},
		{Pos: pos("f.c", 20), Text: "+alloc"},
	})
	if r.Report(Leak, pos("f.c", 15), "inside") != nil {
		t.Fatal("alloc message inside off-span retained")
	}
	if r.Report(NullDeref, pos("f.c", 15), "other class") == nil {
		t.Fatal("unrelated class suppressed")
	}
	if r.Report(Leak, pos("f.c", 25), "after") == nil {
		t.Fatal("message after re-enable suppressed")
	}
	if r.Report(Leak, pos("g.c", 15), "other file") == nil {
		t.Fatal("other file suppressed")
	}
}

func TestLocalFlagUnclosed(t *testing.T) {
	r := NewReporter(0)
	r.AddSuppressions([]Control{{Pos: pos("f.c", 3), Text: "-null"}})
	if r.Report(NullDeref, pos("f.c", 999), "way later") != nil {
		t.Fatal("unclosed toggle should run to EOF")
	}
}

func TestUnknownLocalFlagIgnored(t *testing.T) {
	r := NewReporter(0)
	r.AddSuppressions([]Control{{Pos: pos("f.c", 1), Text: "-wibble"}})
	if r.Report(Leak, pos("f.c", 5), "x") == nil {
		t.Fatal("unknown flag suppressed messages")
	}
}

// Every diagnostic code must have an explicit, unique, parseable name:
// these names key the -stats, -stats-json, and trace surfaces, so a
// collision or fallback spelling would silently merge categories.
func TestCodeNamesRoundTrip(t *testing.T) {
	seen := map[string]Code{}
	for _, c := range Codes() {
		name := c.String()
		if strings.HasPrefix(name, "code(") {
			t.Errorf("code %d has no explicit name", int(c))
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("codes %d and %d share the name %q", int(prev), int(c), name)
		}
		seen[name] = c
		parsed, ok := ParseCode(name)
		if !ok || parsed != c {
			t.Errorf("ParseCode(%q) = %v, %v; want %v, true", name, parsed, ok, c)
		}
		txt, err := c.MarshalText()
		if err != nil || string(txt) != name {
			t.Errorf("MarshalText(%v) = %q, %v", c, txt, err)
		}
		var back Code
		if err := back.UnmarshalText(txt); err != nil || back != c {
			t.Errorf("UnmarshalText(%q) = %v, %v", txt, back, err)
		}
	}
	if len(seen) != int(numCodes) {
		t.Fatalf("Codes() covered %d names, want %d", len(seen), int(numCodes))
	}
	if _, ok := ParseCode("no-such-code"); ok {
		t.Error("ParseCode accepted an unknown name")
	}
	var c Code
	if err := c.UnmarshalText([]byte("no-such-code")); err == nil {
		t.Error("UnmarshalText accepted an unknown name")
	}
}
