package diag

import (
	"strings"
	"testing"

	"golclint/internal/ctoken"
)

// sampleDiags builds a representative diagnostic set: every code, multi-note
// messages, empty and non-ASCII text, and positions with every field set.
func sampleDiags() []*Diagnostic {
	var ds []*Diagnostic
	for _, c := range Codes() {
		d := &Diagnostic{
			Code: c,
			Pos:  ctoken.Pos{File: "mod1.c", Line: 10 + int(c), Col: 3, Off: 120 + int(c)},
			Msg:  "storage p may become " + c.String(),
		}
		if int(c)%2 == 0 {
			d.WithNote(ctoken.Pos{File: "mod1.c", Line: 5, Col: 1, Off: 40}, "Storage p allocated")
			d.WithNote(ctoken.Pos{File: "mod0.h", Line: 2, Col: 7, Off: 9}, "declared with /*@only@*/")
		}
		ds = append(ds, d)
	}
	ds = append(ds, &Diagnostic{Code: UnknownName, Pos: ctoken.Pos{Line: 1}, Msg: ""})
	ds = append(ds, &Diagnostic{Code: TypeError, Pos: ctoken.Pos{File: "ü.c", Line: 7}, Msg: "naïve cast — \"quoted\""})
	return ds
}

// The cache replays serialized diagnostics in place of live ones, so the
// round trip must preserve every field and the rendered output.
func TestMarshalRoundTrip(t *testing.T) {
	ds := sampleDiags()
	b, err := Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualAll(ds, got) {
		t.Fatalf("round trip changed diagnostics:\nbefore %+v\nafter  %+v", ds, got)
	}
	for i := range ds {
		if Compare(ds[i], got[i]) != 0 {
			t.Errorf("diag %d: Compare != 0 after round trip", i)
		}
		if ds[i].String() != got[i].String() {
			t.Errorf("diag %d renders differently:\n%q\nvs\n%q", i, ds[i].String(), got[i].String())
		}
	}
}

func TestMarshalRoundTripEmpty(t *testing.T) {
	b, err := Marshal(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("round trip of empty set = %v", got)
	}
}

func TestMarshalNilEntry(t *testing.T) {
	if _, err := Marshal([]*Diagnostic{nil}); err == nil {
		t.Fatal("marshal of nil entry succeeded; want error")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	cases := []string{
		"",                      // empty
		"{",                     // truncated
		"[{\"code\":\"nope\"}]", // unknown code
		"\x00\x01\x02",          // binary garbage
		"[{\"code\":17}]",       // wrong code type (number, not name)
	}
	for _, src := range cases {
		if _, err := Unmarshal([]byte(src)); err == nil {
			t.Errorf("Unmarshal(%q) succeeded; want error", src)
		}
	}
}

// Codes serialize by name, not number, so renumbering cannot corrupt caches.
func TestMarshalUsesCodeNames(t *testing.T) {
	b, err := Marshal([]*Diagnostic{{Code: Leak, Pos: ctoken.Pos{File: "a.c", Line: 1}, Msg: "m"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "\"mustfree\"") {
		t.Fatalf("serialized form lacks code name: %s", b)
	}
}

func TestEqual(t *testing.T) {
	base := &Diagnostic{Code: Leak, Pos: ctoken.Pos{File: "a.c", Line: 3, Col: 2}, Msg: "m",
		Notes: []Note{{Pos: ctoken.Pos{File: "a.c", Line: 1}, Msg: "n"}}}
	same := &Diagnostic{Code: Leak, Pos: ctoken.Pos{File: "a.c", Line: 3, Col: 2}, Msg: "m",
		Notes: []Note{{Pos: ctoken.Pos{File: "a.c", Line: 1}, Msg: "n"}}}
	if !Equal(base, same) {
		t.Error("identical diagnostics compare unequal")
	}
	diffNote := &Diagnostic{Code: Leak, Pos: base.Pos, Msg: "m",
		Notes: []Note{{Pos: ctoken.Pos{File: "a.c", Line: 2}, Msg: "n"}}}
	if Equal(base, diffNote) {
		t.Error("note difference not detected")
	}
	if Equal(base, nil) || !Equal(nil, nil) {
		t.Error("nil handling wrong")
	}
}

// Provenance must round-trip through the wire format and be compared by
// Equal — a warm -explain run replays cached witnesses verbatim.
func TestMarshalProvenanceRoundTrip(t *testing.T) {
	d := &Diagnostic{Code: UseDead, Pos: ctoken.Pos{File: "a.c", Line: 14}, Msg: "used after release",
		Prov: &Provenance{Ref: "p", Steps: []ProvStep{
			{Pos: ctoken.Pos{File: "a.c", Line: 3}, Kind: "entry", Msg: "checking function f"},
			{Pos: ctoken.Pos{File: "a.c", Line: 10}, Kind: "alloc", Msg: "fresh storage allocated"},
			{Pos: ctoken.Pos{File: "a.c", Line: 12}, Kind: "release", Msg: "released by call to free"},
		}}}
	b, err := Marshal([]*Diagnostic{d})
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || !Equal(d, back[0]) {
		t.Fatalf("provenance did not round-trip:\n got %+v\nwant %+v", back[0].Prov, d.Prov)
	}
	if back[0].Explain() != d.Explain() {
		t.Fatalf("Explain drifted over the wire:\n%s\nvs\n%s", back[0].Explain(), d.Explain())
	}
	// Equal must detect witness differences.
	mut, _ := Unmarshal(b)
	mut[0].Prov.Steps[1].Kind = "release"
	if Equal(d, mut[0]) {
		t.Error("witness step difference not detected by Equal")
	}
	none, _ := Unmarshal(b)
	none[0].Prov = nil
	if Equal(d, none[0]) {
		t.Error("missing provenance not detected by Equal")
	}
}

// String must ignore provenance: default output is byte-identical whether
// or not witnesses were recorded.
func TestStringIgnoresProvenance(t *testing.T) {
	plain := &Diagnostic{Code: Leak, Pos: ctoken.Pos{File: "a.c", Line: 3}, Msg: "m"}
	traced := &Diagnostic{Code: Leak, Pos: ctoken.Pos{File: "a.c", Line: 3}, Msg: "m",
		Prov: &Provenance{Ref: "p", Steps: []ProvStep{{Kind: "entry", Msg: "f"}}}}
	if plain.String() != traced.String() {
		t.Errorf("String differs with provenance attached: %q vs %q", plain.String(), traced.String())
	}
	if traced.Explain() == traced.String() {
		t.Error("Explain did not append the witness")
	}
}
