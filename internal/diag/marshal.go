package diag

import (
	"encoding/json"
	"fmt"

	"golclint/internal/ctoken"
)

// The serialized diagnostic format. Cached analysis results (internal/cache)
// replay stored diagnostics instead of re-running the checker, so the wire
// form must round-trip exactly: Unmarshal(Marshal(ds)) compares equal under
// Compare and renders byte-identical String() output. The wire structs
// mirror Diagnostic/Note field-for-field with explicit JSON names so the
// format cannot drift silently when the in-memory structs grow fields — any
// new field must be added here (and to Equal) deliberately.

// wirePos is the serialized ctoken.Pos.
type wirePos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Off  int    `json:"off"`
}

func toWirePos(p ctoken.Pos) wirePos {
	return wirePos{File: p.File, Line: p.Line, Col: p.Col, Off: p.Off}
}
func fromWirePos(p wirePos) ctoken.Pos {
	return ctoken.Pos{File: p.File, Line: p.Line, Col: p.Col, Off: p.Off}
}

// wireNote is the serialized Note.
type wireNote struct {
	Pos wirePos `json:"pos"`
	Msg string  `json:"msg"`
}

// wireStep is the serialized ProvStep.
type wireStep struct {
	Pos  wirePos `json:"pos"`
	Kind string  `json:"kind"`
	Msg  string  `json:"msg"`
}

// wireProv is the serialized Provenance. Provenance round-trips through
// cache entries so a warm -explain run replays the same witnesses the cold
// run computed.
type wireProv struct {
	Ref   string     `json:"ref,omitempty"`
	Steps []wireStep `json:"steps,omitempty"`
}

// wireValidation is the serialized Validation. Validation outcomes
// round-trip through cache entries so a warm -validate run replays the
// tags the cold run computed without re-executing any harness.
type wireValidation struct {
	Tag    ValidationTag `json:"tag"`
	Detail string        `json:"detail,omitempty"`
}

// wireDiag is the serialized Diagnostic. Code serializes by its stable
// short name (MarshalText), so entries survive code renumbering.
type wireDiag struct {
	Code       Code            `json:"code"`
	Pos        wirePos         `json:"pos"`
	Msg        string          `json:"msg"`
	Notes      []wireNote      `json:"notes,omitempty"`
	Prov       *wireProv       `json:"prov,omitempty"`
	Validation *wireValidation `json:"validation,omitempty"`
}

// Marshal serializes diagnostics to JSON in slice order.
func Marshal(ds []*Diagnostic) ([]byte, error) {
	wire := make([]wireDiag, 0, len(ds))
	for i, d := range ds {
		if d == nil {
			return nil, fmt.Errorf("marshal diagnostics: nil entry at %d", i)
		}
		w := wireDiag{Code: d.Code, Pos: toWirePos(d.Pos), Msg: d.Msg}
		for _, n := range d.Notes {
			w.Notes = append(w.Notes, wireNote{Pos: toWirePos(n.Pos), Msg: n.Msg})
		}
		if d.Prov != nil {
			wp := &wireProv{Ref: d.Prov.Ref}
			for _, s := range d.Prov.Steps {
				wp.Steps = append(wp.Steps, wireStep{Pos: toWirePos(s.Pos), Kind: s.Kind, Msg: s.Msg})
			}
			w.Prov = wp
		}
		if d.Validation != nil {
			w.Validation = &wireValidation{Tag: d.Validation.Tag, Detail: d.Validation.Detail}
		}
		wire = append(wire, w)
	}
	return json.Marshal(wire)
}

// Unmarshal reverses Marshal. Unknown diagnostic codes are an error (a
// cache entry written by an incompatible checker must not half-load).
func Unmarshal(b []byte) ([]*Diagnostic, error) {
	var wire []wireDiag
	if err := json.Unmarshal(b, &wire); err != nil {
		return nil, fmt.Errorf("unmarshal diagnostics: %w", err)
	}
	ds := make([]*Diagnostic, 0, len(wire))
	for _, w := range wire {
		d := &Diagnostic{Code: w.Code, Pos: fromWirePos(w.Pos), Msg: w.Msg}
		for _, n := range w.Notes {
			d.Notes = append(d.Notes, Note{Pos: fromWirePos(n.Pos), Msg: n.Msg})
		}
		if w.Prov != nil {
			p := &Provenance{Ref: w.Prov.Ref}
			for _, s := range w.Prov.Steps {
				p.Steps = append(p.Steps, ProvStep{Pos: fromWirePos(s.Pos), Kind: s.Kind, Msg: s.Msg})
			}
			d.Prov = p
		}
		if w.Validation != nil {
			d.Validation = &Validation{Tag: w.Validation.Tag, Detail: w.Validation.Detail}
		}
		ds = append(ds, d)
	}
	return ds, nil
}

// Equal reports whether two diagnostics are identical, notes included.
// Compare only orders by (pos, code, msg); Equal is the full-field check the
// serialization round-trip and cache-replay tests rely on.
func Equal(a, b *Diagnostic) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Code != b.Code || a.Pos != b.Pos || a.Msg != b.Msg || len(a.Notes) != len(b.Notes) {
		return false
	}
	for i := range a.Notes {
		if a.Notes[i] != b.Notes[i] {
			return false
		}
	}
	return equalProv(a.Prov, b.Prov) && equalValidation(a.Validation, b.Validation)
}

// equalValidation compares two validation records field-for-field.
func equalValidation(a, b *Validation) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// equalProv compares two witness paths field-for-field.
func equalProv(a, b *Provenance) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Ref != b.Ref || len(a.Steps) != len(b.Steps) {
		return false
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			return false
		}
	}
	return true
}

// EqualAll reports whether two diagnostic slices are element-wise Equal.
func EqualAll(a, b []*Diagnostic) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
