// Package atomicio provides crash-safe file writes: data lands in a
// temporary file in the destination directory and is renamed into place,
// so readers never observe a truncated artifact. The cache, -stats-json,
// and the benchmark JSON emitters all share this helper.
package atomicio

import (
	"os"
	"path/filepath"
)

// WriteFile writes data to path atomically: it creates a temporary file in
// path's directory, writes data, syncs nothing (the rename is the atomicity
// boundary we care about — a crashed run leaves either the old file or the
// new one, never a prefix), chmods to perm, and renames over path. On any
// error the temporary file is removed.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
