package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "{}\n" {
		t.Fatalf("content = %q", b)
	}
	// Overwrite must replace, not append.
	if err := WriteFile(path, []byte("2"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if string(b) != "2" {
		t.Fatalf("after overwrite content = %q", b)
	}
	// No temporary files may survive a successful write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}
