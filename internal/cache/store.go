package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultMemLimit bounds a MemStore's resident bytes unless SetLimit says
// otherwise. Entries average a few KB, so this holds on the order of 10^5
// warm modules — plenty for one daemon, small enough to never matter.
const DefaultMemLimit = 256 << 20

// MemStore is the resident in-memory Store behind the analysis server's
// warm path. Entries are held in the same wire-byte form the disk cache
// writes and decoded afresh on every Get, which buys two properties at
// once: a hit hands each caller its own Entry (concurrent requests can
// never alias or mutate one another's diagnostics), and a caller that does
// mutate its copy cannot poison the store. The byte images are immutable
// after Put, so Gets run under a read lock only.
//
// A nil *MemStore is valid and behaves as an always-miss, discard-writes
// store, mirroring the nil *Cache contract.
type MemStore struct {
	mu      sync.RWMutex
	entries map[string][]byte
	bytes   int64
	limit   int64

	hits, misses, evictions atomic.Int64
}

// NewMemStore returns an empty store bounded at DefaultMemLimit.
func NewMemStore() *MemStore {
	return &MemStore{entries: map[string][]byte{}, limit: DefaultMemLimit}
}

// SetLimit rebounds the store's resident bytes (0 or negative = unlimited).
// Shrinking below current usage evicts immediately (arbitrary entries
// first, like Put), so the store never holds more than the new bound.
func (m *MemStore) SetLimit(bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.limit = bytes
	if bytes <= 0 {
		return
	}
	for k, old := range m.entries {
		if m.bytes <= bytes {
			break
		}
		m.bytes -= int64(len(old))
		delete(m.entries, k)
		m.evictions.Add(1)
	}
}

// Get implements Store. The returned Entry is freshly decoded and owned by
// the caller.
func (m *MemStore) Get(key string) (*Entry, bool) {
	if m == nil {
		return nil, false
	}
	m.mu.RLock()
	b, ok := m.entries[key]
	m.mu.RUnlock()
	if !ok {
		m.misses.Add(1)
		return nil, false
	}
	e, ok := decodeEntry(key, b)
	if !ok {
		// Unreachable for bytes produced by Put, but keep the disk cache's
		// contract: corruption is a miss, never an error.
		m.misses.Add(1)
		return nil, false
	}
	m.hits.Add(1)
	return e, true
}

// Put implements Store. When inserting would exceed the byte limit,
// arbitrary entries are evicted first (cache entries are content-addressed
// and reproducible, so eviction order affects only warmth, never
// correctness); an entry larger than the whole limit is discarded.
func (m *MemStore) Put(key string, e *Entry) (int64, error) {
	if m == nil {
		return 0, nil
	}
	if key == "" {
		return 0, fmt.Errorf("mem store put: empty key")
	}
	b, err := encodeEntry(key, e)
	if err != nil {
		return 0, fmt.Errorf("mem store put: %w", err)
	}
	e.Size = int64(len(b))
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.entries[key]; ok {
		m.bytes -= int64(len(old))
	}
	if m.limit > 0 {
		if int64(len(b)) > m.limit {
			delete(m.entries, key)
			return 0, nil
		}
		for k, old := range m.entries {
			if m.bytes+int64(len(b)) <= m.limit {
				break
			}
			if k == key {
				continue
			}
			m.bytes -= int64(len(old))
			delete(m.entries, k)
			m.evictions.Add(1)
		}
	}
	m.entries[key] = b
	m.bytes += int64(len(b))
	return int64(len(b)), nil
}

// StoreStats is a point-in-time snapshot of one store layer's counters —
// every backend (memory, disk, remote) reports the same shape, surfaced by
// -stats-json and the server /stats endpoints. RawBytes and
// CompressedBytes are zero on layers that store entries uncompressed (the
// memory store, whose Gets must stay cheap).
type StoreStats struct {
	Entries         int   `json:"entries"`
	Bytes           int64 `json:"bytes"`
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Evictions       int64 `json:"evictions"`
	RawBytes        int64 `json:"raw_bytes,omitempty"`
	CompressedBytes int64 `json:"compressed_bytes,omitempty"`
}

// MemStats is the historical name for StoreStats, kept for callers that
// predate the multi-backend store.
type MemStats = StoreStats

// Stats snapshots the store's counters (zero values on a nil store).
func (m *MemStore) Stats() StoreStats {
	if m == nil {
		return StoreStats{}
	}
	m.mu.RLock()
	s := StoreStats{Entries: len(m.entries), Bytes: m.bytes}
	m.mu.RUnlock()
	s.Hits = m.hits.Load()
	s.Misses = m.misses.Load()
	s.Evictions = m.evictions.Load()
	return s
}

// Len reports the number of resident entries.
func (m *MemStore) Len() int {
	if m == nil {
		return 0
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Layered composes two Stores into one: Get consults Fast first and, on a
// Slow hit, promotes the entry into Fast so the next Get stays resident;
// Put writes through to both. The analysis server runs a MemStore over the
// on-disk Cache this way — warm requests never touch disk, while every
// outcome still persists across daemon restarts. Either layer may be nil
// (or a typed nil), in which case it simply never hits and discards writes.
type Layered struct {
	Fast Store
	Slow Store
}

// Get implements Store.
func (l *Layered) Get(key string) (*Entry, bool) {
	if l.Fast != nil {
		if e, ok := l.Fast.Get(key); ok {
			return e, true
		}
	}
	if l.Slow == nil {
		return nil, false
	}
	e, ok := l.Slow.Get(key)
	if !ok {
		return nil, false
	}
	// Promotion is best-effort: a full fast layer just means the next Get
	// reads slow again.
	if l.Fast != nil {
		l.Fast.Put(key, e)
	}
	return e, true
}

// Put implements Store; the reported size is the entry's wire length.
func (l *Layered) Put(key string, e *Entry) (int64, error) {
	var n int64
	var err error
	if l.Fast != nil {
		n, err = l.Fast.Put(key, e)
	}
	if l.Slow != nil {
		n2, err2 := l.Slow.Put(key, e)
		if err == nil {
			err = err2
		}
		if n2 > n {
			n = n2
		}
	}
	return n, err
}
