package cache

import (
	"fmt"
	"sync"
	"testing"

	"golclint/internal/diag"
)

// The three implementations must all satisfy Store.
var (
	_ Store = (*Cache)(nil)
	_ Store = (*MemStore)(nil)
	_ Store = (*Layered)(nil)
)

func TestMemStoreRoundTrip(t *testing.T) {
	m := NewMemStore()
	key := Key("v1", "+null", map[string]string{"m.c": "int x;"})
	want := testEntry()
	n, err := m.Put(key, want)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || want.Size != n {
		t.Errorf("Put size = %d (entry %d)", n, want.Size)
	}
	got, ok := m.Get(key)
	if !ok {
		t.Fatal("entry missing after Put")
	}
	if !diag.EqualAll(want.Diags, got.Diags) {
		t.Errorf("diags changed: %+v vs %+v", want.Diags, got.Diags)
	}
	if got.Suppressed != want.Suppressed || got.Size != n {
		t.Errorf("suppressed/size = %d/%d, want %d/%d", got.Suppressed, got.Size, want.Suppressed, n)
	}
	if _, ok := m.Get("absent-key"); ok {
		t.Error("Get on absent key hit")
	}
	s := m.Stats()
	if s.Entries != 1 || s.Bytes != n || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// A caller mutating the Entry a Get handed out must not poison what later
// Gets see — the resident store's isolation contract.
func TestMemStoreGetIsolation(t *testing.T) {
	m := NewMemStore()
	key := "deadbeef"
	if _, err := m.Put(key, testEntry()); err != nil {
		t.Fatal(err)
	}
	e1, _ := m.Get(key)
	e1.Diags[0].Msg = "CLOBBERED"
	e1.Deps["helper"] = "CLOBBERED"
	e1.Suppressed = -1
	e2, ok := m.Get(key)
	if !ok {
		t.Fatal("entry gone after mutation")
	}
	if e2.Diags[0].Msg != "Only storage p not released" || e2.Deps["helper"] != "fp1" || e2.Suppressed != 3 {
		t.Errorf("mutation leaked into store: %+v", e2)
	}
}

func TestMemStoreEviction(t *testing.T) {
	m := NewMemStore()
	probe := testEntry()
	if _, err := m.Put("probe", probe); err != nil {
		t.Fatal(err)
	}
	size := probe.Size
	m.SetLimit(3 * size)
	for i := 0; i < 10; i++ {
		if _, err := m.Put(fmt.Sprintf("key%02d", i), testEntry()); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.Bytes > 3*size {
		t.Errorf("bytes %d over limit %d", s.Bytes, 3*size)
	}
	if s.Entries == 0 || s.Evictions == 0 {
		t.Errorf("stats after eviction = %+v", s)
	}
	// An entry larger than the whole limit is discarded, not stored.
	m.SetLimit(1)
	if _, err := m.Put("huge", testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get("huge"); ok {
		t.Error("over-limit entry was stored")
	}
}

func TestMemStoreNilSafe(t *testing.T) {
	var m *MemStore
	if _, ok := m.Get("k"); ok {
		t.Error("nil Get hit")
	}
	if n, err := m.Put("k", testEntry()); n != 0 || err != nil {
		t.Errorf("nil Put = %d, %v", n, err)
	}
	if s := m.Stats(); s != (MemStats{}) {
		t.Errorf("nil Stats = %+v", s)
	}
	if m.Len() != 0 {
		t.Error("nil Len != 0")
	}
}

func TestMemStoreConcurrent(t *testing.T) {
	m := NewMemStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key%d", i%10)
				if w%2 == 0 {
					m.Put(key, testEntry())
				} else if e, ok := m.Get(key); ok {
					e.Diags[0].Msg = "local mutation only"
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 10; i++ {
		if e, ok := m.Get(fmt.Sprintf("key%d", i)); ok && e.Diags[0].Msg != "Only storage p not released" {
			t.Fatalf("store poisoned: %q", e.Diags[0].Msg)
		}
	}
}

// Layered: fast hit skips slow, slow hit promotes into fast, puts write
// through to both, and nil layers are inert.
func TestLayered(t *testing.T) {
	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemStore()
	l := &Layered{Fast: mem, Slow: disk}

	// Write-through: both layers hold the entry.
	if _, err := l.Put("aa11", testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := mem.Get("aa11"); !ok {
		t.Error("put did not reach fast layer")
	}
	if _, ok := disk.Get("aa11"); !ok {
		t.Error("put did not reach slow layer")
	}

	// Slow-only entry (a prior daemon run's disk state) promotes on Get.
	if _, err := disk.Put("bb22", testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get("bb22"); !ok {
		t.Fatal("layered miss on slow-resident entry")
	}
	if _, ok := mem.Get("bb22"); !ok {
		t.Error("slow hit was not promoted into fast layer")
	}

	if _, ok := l.Get("cc33"); ok {
		t.Error("hit on absent key")
	}

	memOnly := &Layered{Fast: NewMemStore()}
	if _, err := memOnly.Put("dd44", testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := memOnly.Get("dd44"); !ok {
		t.Error("fast-only layered lost entry")
	}
	var empty Layered
	if _, ok := empty.Get("aa11"); ok {
		t.Error("zero Layered hit")
	}
	if _, err := empty.Put("aa11", testEntry()); err != nil {
		t.Error(err)
	}
}

// Shrinking the limit below current usage must evict immediately, not wait
// for the next Put.
func TestMemStoreSetLimitEvictsImmediately(t *testing.T) {
	m := NewMemStore()
	var size int64
	for i := 0; i < 10; i++ {
		n, err := m.Put(fmt.Sprintf("key%02d", i), testEntry())
		if err != nil {
			t.Fatal(err)
		}
		size = n
	}
	before := m.Stats()
	if before.Entries != 10 {
		t.Fatalf("setup: %d entries", before.Entries)
	}
	m.SetLimit(3 * size)
	s := m.Stats()
	if s.Bytes > 3*size {
		t.Errorf("bytes %d over limit %d immediately after SetLimit", s.Bytes, 3*size)
	}
	if s.Entries > 3 {
		t.Errorf("%d entries survive a 3-entry limit", s.Entries)
	}
	if s.Evictions == 0 {
		t.Error("no evictions recorded")
	}
	// Growing or unbounding never evicts.
	m.SetLimit(0)
	if got := m.Stats().Entries; got != s.Entries {
		t.Errorf("unbounding changed entry count %d -> %d", s.Entries, got)
	}
}
