package cache

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"io"
)

// Blob framing. Every entry persisted on disk or shipped over the blob
// protocol travels inside a self-verifying frame:
//
//	magic   "glcb1\n"            (6 bytes)
//	rawLen  uint64 little-endian (decompressed payload length)
//	compLen uint64 little-endian (compressed payload length)
//	sum     sha256(compressed)   (32 bytes)
//	payload flate(entry wire bytes, preset dict frameDict), compLen bytes
//
// The payload is a raw DEFLATE stream primed with the frameDict preset
// dictionary (see frame_dict.go): cache entries are small and share most
// of their bytes with every other entry, which a per-entry compressor
// cannot exploit but a preset dictionary can.
//
// The checksum covers the compressed payload, so a frame corrupted
// anywhere — on disk, in a proxy, by a truncated read — is detected before
// any decompression happens. Deframing shares the cache's robustness
// contract: every malformed frame reads as a miss, never an error, so a
// hostile or broken blob server can only make runs slower, not wrong.
const (
	frameMagic  = "glcb1\n"
	frameHeader = len(frameMagic) + 8 + 8 + sha256.Size

	// maxFrameBytes bounds what deframeBlob will touch: a frame advertising
	// more is treated as corrupt rather than allocated. Far above any real
	// entry (the largest observed entries are single-digit MB).
	maxFrameBytes = 256 << 20
)

// frameBlob wraps raw entry bytes in the compressed, checksummed wire
// frame. It never fails: flate over a byte slice cannot error.
func frameBlob(raw []byte) []byte {
	var comp bytes.Buffer
	zw, _ := flate.NewWriterDict(&comp, flate.BestCompression, []byte(frameDict))
	zw.Write(raw)
	zw.Close()

	out := make([]byte, 0, frameHeader+comp.Len())
	out = append(out, frameMagic...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(raw)))
	out = binary.LittleEndian.AppendUint64(out, uint64(comp.Len()))
	sum := sha256.Sum256(comp.Bytes())
	out = append(out, sum[:]...)
	return append(out, comp.Bytes()...)
}

// deframeBlob unwraps a frame produced by frameBlob, verifying magic,
// lengths, and checksum before decompressing and the decompressed length
// after. Any mismatch returns ok=false; it never panics and never returns
// a partial payload.
func deframeBlob(b []byte) (raw []byte, ok bool) {
	if len(b) < frameHeader || string(b[:len(frameMagic)]) != frameMagic {
		return nil, false
	}
	rawLen := binary.LittleEndian.Uint64(b[len(frameMagic):])
	compLen := binary.LittleEndian.Uint64(b[len(frameMagic)+8:])
	if rawLen > maxFrameBytes || compLen > maxFrameBytes {
		return nil, false
	}
	sum := b[len(frameMagic)+16 : frameHeader]
	comp := b[frameHeader:]
	if uint64(len(comp)) != compLen {
		return nil, false
	}
	if sha256.Sum256(comp) != [sha256.Size]byte(sum) {
		return nil, false
	}
	zr := flate.NewReaderDict(bytes.NewReader(comp), []byte(frameDict))
	defer zr.Close()
	// Read one byte past the advertised length so a payload that is longer
	// than declared is caught, not silently truncated.
	raw = make([]byte, 0, rawLen)
	buf, err := io.ReadAll(io.LimitReader(zr, int64(rawLen)+1))
	if err != nil || uint64(len(buf)) != rawLen {
		return nil, false
	}
	return buf, true
}

// isFramed reports whether b begins with the frame magic (used to keep
// reading entries written before compression existed: those decode as bare
// JSON).
func isFramed(b []byte) bool {
	return len(b) >= len(frameMagic) && string(b[:len(frameMagic)]) == frameMagic
}
