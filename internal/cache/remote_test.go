package cache

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// blobHandler is a minimal in-test blob server: a locked map of framed
// bytes, no validation (tests inject arbitrary responses elsewhere).
type blobHandler struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

func (h *blobHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/blob/")
	h.mu.Lock()
	defer h.mu.Unlock()
	switch r.Method {
	case http.MethodGet:
		b, ok := h.blobs[key]
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.Write(b)
	case http.MethodPut:
		b, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		h.blobs[key] = b
		w.WriteHeader(http.StatusNoContent)
	}
}

func TestValidBlobKey(t *testing.T) {
	valid := []string{"ab", strings.Repeat("0123456789abcdef", 4), strings.Repeat("ff", 64)}
	for _, k := range valid {
		if !ValidBlobKey(k) {
			t.Errorf("ValidBlobKey(%q) = false", k)
		}
	}
	invalid := []string{
		"", "a", strings.Repeat("ab", 65),
		"../../../../etc/passwd", "abcg", "ABCD", "ab cd", "ab\ncd",
		"-flag", "ab/cd", "ab?x=1", "ab#f",
	}
	for _, k := range invalid {
		if ValidBlobKey(k) {
			t.Errorf("ValidBlobKey(%q) = true", k)
		}
	}
}

func TestRemoteStoreRoundTrip(t *testing.T) {
	h := &blobHandler{blobs: map[string][]byte{}}
	srv := httptest.NewServer(h)
	defer srv.Close()

	r := NewRemoteStore(srv.URL)
	key := Key("v1", "", map[string]string{"a.c": "int x;"})
	want := testEntry()
	n, err := r.Put(key, want)
	if err != nil || n <= 0 {
		t.Fatalf("Put = %d, %v", n, err)
	}
	got, ok := r.Get(key)
	if !ok {
		t.Fatal("entry missing after Put")
	}
	if got.Suppressed != want.Suppressed || len(got.Diags) != len(want.Diags) {
		t.Errorf("entry changed through remote round trip: %+v", got)
	}
	if _, ok := r.Get(strings.Repeat("00", 32)); ok {
		t.Error("hit on absent key")
	}
	s := r.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", s.Hits, s.Misses)
	}
	if s.CompressedBytes <= 0 || s.RawBytes <= s.CompressedBytes {
		t.Errorf("raw/compressed = %d/%d", s.RawBytes, s.CompressedBytes)
	}
}

// A dead server makes every Get a miss and every Put a swallowed no-op —
// never an error, never a hang (the client has a timeout).
func TestRemoteStoreServerDown(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // now nothing listens there

	r := NewRemoteStore(url)
	key := Key("v1", "", map[string]string{"a.c": "int x;"})
	if _, ok := r.Get(key); ok {
		t.Error("hit against a dead server")
	}
	if _, err := r.Put(key, testEntry()); err != nil {
		t.Errorf("Put against a dead server errored: %v", err)
	}
	if r.Errors() == 0 {
		t.Error("transport failures not counted")
	}
}

// Invalid keys never reach the wire: the client rejects them before
// issuing a request (the server would too, but the client must not depend
// on that).
func TestRemoteStoreRejectsInvalidKeys(t *testing.T) {
	requests := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
	}))
	defer srv.Close()

	r := NewRemoteStore(srv.URL)
	for _, key := range []string{"", "../../x", "ABC", "ab cd", "-flag"} {
		if _, ok := r.Get(key); ok {
			t.Errorf("Get(%q) hit", key)
		}
		if _, err := r.Put(key, testEntry()); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
	}
	if requests != 0 {
		t.Errorf("%d requests reached the server for invalid keys", requests)
	}
}

// A nil RemoteStore is an always-miss, discard-writes store, like the
// other backends.
func TestRemoteStoreNilSafe(t *testing.T) {
	var r *RemoteStore
	if _, ok := r.Get("abcd"); ok {
		t.Error("nil store hit")
	}
	if n, err := r.Put("abcd", testEntry()); err != nil || n != 0 {
		t.Errorf("nil store Put = %d, %v", n, err)
	}
	if r.Stats() != (StoreStats{}) {
		t.Error("nil store stats non-zero")
	}
}

// FuzzRemoteStore throws arbitrary server response bodies at the client:
// whatever the server answers — truncated frames, corrupted checksums,
// oversized declarations, non-gzip payloads, valid frames holding foreign
// entries — the client must either miss cleanly or return a correctly
// decoded entry for the requested key. It must never panic.
func FuzzRemoteStore(f *testing.F) {
	key := Key("v1", "", map[string]string{"a.c": "int x;"})
	goodRaw, err := encodeEntry(key, testEntry())
	if err != nil {
		f.Fatal(err)
	}
	good := frameBlob(goodRaw)

	f.Add([]byte{})
	f.Add([]byte("plain text"))
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(append([]byte(nil), good[:frameHeader]...))
	f.Add(frameBlob([]byte("{}")))
	f.Add(frameBlob(nil))
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, body []byte) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write(body)
		}))
		defer srv.Close()
		r := NewRemoteStore(srv.URL)
		e, ok := r.Get(key)
		if ok {
			// The only acceptable hit is a correct decode of the entry the
			// body actually frames, addressed to this key.
			raw, fok := deframeBlob(body)
			if !fok {
				t.Fatal("hit from an unframeable body")
			}
			want, dok := decodeEntry(key, raw)
			if !dok {
				t.Fatal("hit from an undecodable body")
			}
			if e.Suppressed != want.Suppressed || len(e.Diags) != len(want.Diags) {
				t.Fatal("hit decoded different entry than body frames")
			}
		}
	})
}
