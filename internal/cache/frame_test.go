package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, raw := range [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte(`{"schema":"golclint-cache/v1"}` + "\n"),
		bytes.Repeat([]byte("abcdefgh"), 1<<12),
	} {
		b := frameBlob(raw)
		if !isFramed(b) {
			t.Fatalf("frameBlob output not recognized as framed")
		}
		got, ok := deframeBlob(b)
		if !ok {
			t.Fatalf("round trip failed for %d raw bytes", len(raw))
		}
		if !bytes.Equal(got, raw) {
			t.Fatalf("round trip changed payload: %d bytes in, %d out", len(raw), len(got))
		}
	}
}

func TestFrameCompresses(t *testing.T) {
	// Cache entries are JSON: highly repetitive. The frame must beat the raw
	// size on anything resembling a real entry.
	raw := bytes.Repeat([]byte(`{"code":"leak","pos":{"file":"m.c","line":9}}`), 200)
	b := frameBlob(raw)
	if len(b) >= len(raw) {
		t.Errorf("framed %d bytes >= raw %d bytes", len(b), len(raw))
	}
}

// Every malformed frame must deframe to a miss — never a panic, never a
// partial payload.
func TestDeframeRejectsCorruption(t *testing.T) {
	raw := []byte(`{"schema":"golclint-cache/v1","key":"abc"}`)
	good := frameBlob(raw)

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := map[string][]byte{
		"empty":       nil,
		"short":       good[:frameHeader-1],
		"bad-magic":   mutate(func(b []byte) []byte { b[0] ^= 0xff; return b }),
		"no-payload":  good[:frameHeader],
		"extra-bytes": append(append([]byte(nil), good...), 0x00),
		"flip-payload": mutate(func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}),
		"flip-checksum": mutate(func(b []byte) []byte {
			b[len(frameMagic)+16] ^= 0x01
			return b
		}),
		"raw-len-low": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(frameMagic):], uint64(len(raw)-1))
			return b
		}),
		"raw-len-high": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(frameMagic):], uint64(len(raw)+1))
			return b
		}),
		"raw-len-huge": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(frameMagic):], maxFrameBytes+1)
			return b
		}),
		"comp-len-huge": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[len(frameMagic)+8:], maxFrameBytes+1)
			return b
		}),
		"not-flate": func() []byte {
			// Valid header and checksum over a payload that is not a
			// flate stream (rawLen disagreeing with whatever it inflates
			// to also rejects it).
			junk := []byte("definitely not flate data")
			b := frameBlob(raw)[:frameHeader]
			binary.LittleEndian.PutUint64(b[len(frameMagic)+8:], uint64(len(junk)))
			sum := sha256.Sum256(junk)
			copy(b[len(frameMagic)+16:], sum[:])
			return append(b, junk...)
		}(),
	}
	for name, b := range cases {
		if got, ok := deframeBlob(b); ok {
			t.Errorf("%s: deframed corrupt blob to %d bytes", name, len(got))
		}
	}

	if got, ok := deframeBlob(good); !ok || !bytes.Equal(got, raw) {
		t.Fatal("control: good frame failed to deframe")
	}
}
