// Package cache implements the persistent, content-addressed analysis
// cache behind incremental re-checking. One entry stores the complete
// observable outcome of checking one module (its retained diagnostics,
// suppression count, parse/sema errors, and serialized interface library),
// keyed by a hash of the preprocessed module source plus the checker
// version and flag fingerprint. A module whose key is present and whose
// recorded interface dependencies still match the current interface
// library replays the stored outcome without lexing, parsing, or checking
// — the production form of the paper's §7 argument that modular,
// annotation-driven analysis makes re-checks cost only what changed.
//
// Robustness contract: the cache can only ever make a run faster, never
// wrong. Any missing, truncated, corrupted, or version-mismatched entry
// reads as a miss and the caller falls back to a cold check; entry writes
// are atomic (write-to-temp then rename), so concurrent module workers
// sharing one cache directory cannot observe torn entries.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"golclint/internal/atomicio"
	"golclint/internal/ctoken"
	"golclint/internal/diag"
)

// entrySchema names the on-disk entry format; entries written under any
// other schema are treated as misses.
const entrySchema = "golclint-cache/v1"

// Store is the entry-store abstraction the checker caches through: Get
// answers whether a key's outcome is known, Put records one. Implementations
// share the robustness contract of the disk cache — a Get hit must hand the
// caller an Entry it can own outright (mutating a returned entry must never
// poison later Gets), and any internal corruption reads as a miss. The
// package provides three: *Cache (persistent, on disk), *MemStore (resident
// in memory, for the analysis server), and *Layered (memory over disk).
type Store interface {
	Get(key string) (*Entry, bool)
	Put(key string, e *Entry) (int64, error)
}

// Cache is a handle on one cache directory. The zero value is not usable;
// call Open. A nil *Cache is valid and behaves as an always-miss,
// discard-writes cache, so callers can thread it unconditionally.
//
// Entries are stored framed (compressed and checksummed, see frame.go);
// entries written before framing existed still read back. When a byte
// bound is set (SetMaxBytes / -cache-max-bytes), Put evicts
// least-recently-written entries until the directory fits — entries are
// content-addressed and reproducible, so eviction affects warmth only.
// The size index is per-process and best-effort: concurrent processes
// sharing one directory may briefly overshoot the bound, never corrupt it.
type Cache struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	scanned bool
	usage   int64
	index   map[string]blobInfo

	hits, misses, evictions   atomic.Int64
	rawBytes, compressedBytes atomic.Int64
}

// blobInfo is one on-disk entry in the eviction index.
type blobInfo struct {
	size  int64
	mtime time.Time
}

// Open prepares a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("opening analysis cache: %w", err)
	}
	return &Cache{dir: dir, index: map[string]blobInfo{}}, nil
}

// Dir returns the cache's root directory ("" on a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// SetMaxBytes bounds the directory's total entry bytes (0 or negative =
// unbounded, the default). Shrinking below current usage evicts
// immediately, oldest entries first.
func (c *Cache) SetMaxBytes(n int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = n
	if n > 0 {
		c.scanLocked()
		c.evictLocked("")
	}
}

// scanLocked builds the size index from the directory on first use. Errors
// are ignored: an unreadable directory just means an empty index, and the
// cache degrades to unbounded (its pre-existing behavior).
func (c *Cache) scanLocked() {
	if c.scanned {
		return
	}
	c.scanned = true
	shards, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(c.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			key := strings.TrimSuffix(f.Name(), ".json")
			if key == f.Name() {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			c.index[key] = blobInfo{size: info.Size(), mtime: info.ModTime()}
			c.usage += info.Size()
		}
	}
}

// recordLocked notes one written entry and evicts if the bound is
// exceeded.
func (c *Cache) recordLocked(key string, size int64) {
	c.scanLocked()
	if old, ok := c.index[key]; ok {
		c.usage -= old.size
	}
	c.index[key] = blobInfo{size: size, mtime: time.Now()}
	c.usage += size
	if c.maxBytes > 0 {
		c.evictLocked(key)
	}
}

// evictLocked removes oldest entries until usage fits maxBytes, sparing
// keep (the entry just written).
func (c *Cache) evictLocked(keep string) {
	for c.usage > c.maxBytes {
		victim := ""
		var oldest time.Time
		for k, info := range c.index {
			if k == keep {
				continue
			}
			if victim == "" || info.mtime.Before(oldest) {
				victim, oldest = k, info.mtime
			}
		}
		if victim == "" {
			return
		}
		c.usage -= c.index[victim].size
		delete(c.index, victim)
		os.Remove(c.path(victim))
		c.evictions.Add(1)
	}
}

// Stats snapshots the disk store's counters (zero values on a nil cache).
// Entries and Bytes reflect the per-process view of the directory (scanned
// on first use, tracked incrementally after); RawBytes and CompressedBytes
// accumulate over this process's writes, so their ratio is the compression
// factor achieved.
func (c *Cache) Stats() StoreStats {
	if c == nil {
		return StoreStats{}
	}
	c.mu.Lock()
	c.scanLocked()
	s := StoreStats{Entries: len(c.index), Bytes: c.usage}
	c.mu.Unlock()
	s.Hits = c.hits.Load()
	s.Misses = c.misses.Load()
	s.Evictions = c.evictions.Load()
	s.RawBytes = c.rawBytes.Load()
	s.CompressedBytes = c.compressedBytes.Load()
	return s
}

// Entry is one module's cached analysis outcome.
type Entry struct {
	// Diags are the retained diagnostics exactly as a cold run reported
	// them (post-suppression, source order).
	Diags []*diag.Diagnostic
	// Suppressed is the cold run's suppressed-message count.
	Suppressed int
	// ParseErrors and SemaErrors are the cold run's rendered errors, in
	// emission order.
	ParseErrors []string
	SemaErrors  []string
	// Deps maps every identifier the module mentions to the interface
	// fingerprint that symbol had in the library the module was checked
	// against ("" when the symbol was absent). A hit is valid only while
	// every recorded fingerprint still matches (DepsMatch), which is what
	// invalidates dependents transitively when a module's interface
	// changes.
	Deps map[string]string
	// Library is the module's own serialized interface library (gob, see
	// internal/library), so dependents of a cached module still have its
	// interface facts without re-analyzing it.
	Library []byte
	// Size is the entry's on-disk size in bytes, set by Get and Put (not
	// stored).
	Size int64
	// Fn carries the per-function analysis counters of a function-granular
	// sub-entry (see internal/core's function cache layer), so a replayed
	// function restores the same obs counters the cold check recorded. Nil
	// on module-level entries.
	Fn *FnStats
}

// FnStats are the per-function analysis counters stored with a function
// sub-entry and replayed into the run's metrics on a hit.
type FnStats struct {
	Blocks int64 `json:"blocks"`
	Edges  int64 `json:"edges"`
	Merges int64 `json:"merges"`
}

// wireEntry is the on-disk JSON form of an Entry. Diagnostics use the
// stable wire format from diag.Marshal; Library ([]byte) serializes as
// base64 per encoding/json.
type wireEntry struct {
	Schema      string            `json:"schema"`
	Key         string            `json:"key"`
	Diags       json.RawMessage   `json:"diags"`
	Suppressed  int               `json:"suppressed"`
	ParseErrors []string          `json:"parse_errors,omitempty"`
	SemaErrors  []string          `json:"sema_errors,omitempty"`
	Deps        map[string]string `json:"deps,omitempty"`
	Library     []byte            `json:"library,omitempty"`
	Fn          *FnStats          `json:"fn,omitempty"`
}

// Key computes the content-addressed entry key: a hash over the checker
// version, the flag fingerprint, and each (name, preprocessed source) pair
// in sorted name order. Every component is length-prefixed so distinct
// inputs cannot collide by concatenation. Anything that can change a
// module's diagnostics must flow into one of the three inputs — version
// for the checker itself, flagsFP for configuration, files for source and
// (via preprocessing) headers, defines, and includes. Worker counts are
// deliberately excluded: output is byte-identical at every -jobs value, so
// runs at different parallelism share entries.
func Key(version, flagsFP string, files map[string]string) string {
	h := NewKeyHasher(version, flagsFP)
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h.Component(n)
		h.Component(files[n])
	}
	return h.Sum()
}

// KeyHasher streams cache-key components straight into the hash, so
// callers holding per-file pieces (preprocessed text here, error strings
// there) need not concatenate them into throwaway key strings first. Every
// component is length-prefixed exactly as Key does, and callers must feed
// files in sorted name order to get order-independent keys.
type KeyHasher struct {
	h   hash.Hash
	len [8]byte
}

// NewKeyHasher starts a key over the checker version and flag fingerprint.
func NewKeyHasher(version, flagsFP string) *KeyHasher {
	k := &KeyHasher{h: sha256.New()}
	k.Component(version)
	k.Component(flagsFP)
	return k
}

// Component feeds one length-prefixed string into the key.
func (k *KeyHasher) Component(s string) {
	binary.LittleEndian.PutUint64(k.len[:], uint64(len(s)))
	k.h.Write(k.len[:])
	io.WriteString(k.h, s)
}

// File feeds one module file: its name, preprocessed text, and preprocess
// errors (count-prefixed so zero errors and empty-string errors stay
// distinct). This replaces hashing "expanded + \x00 + join(errors)" concat
// strings built only to be hashed.
func (k *KeyHasher) File(name, expanded string, ppErrors []string) {
	k.Component(name)
	k.Component(expanded)
	binary.LittleEndian.PutUint64(k.len[:], uint64(len(ppErrors)))
	k.h.Write(k.len[:])
	for _, e := range ppErrors {
		k.Component(e)
	}
}

// Sum finalizes and returns the hex key.
func (k *KeyHasher) Sum() string {
	return hex.EncodeToString(k.h.Sum(nil))
}

// path shards entries by the key's first byte to keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get loads the entry for key. The second result is false on a miss — which
// includes absent, unreadable, truncated, corrupted, schema-mismatched, and
// wrong-key entries: a bad cache file is indistinguishable from no cache
// file, by design.
func (c *Cache) Get(key string) (*Entry, bool) {
	if c == nil || len(key) < 2 {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	stored := int64(len(b))
	if isFramed(b) {
		raw, ok := deframeBlob(b)
		if !ok {
			c.misses.Add(1)
			return nil, false
		}
		b = raw
	}
	e, ok := decodeEntry(key, b)
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	// Size reports the on-disk footprint (the framed bytes), matching what
	// Put charged, so cache_bytes counters agree across hits and misses.
	e.Size = stored
	c.hits.Add(1)
	return e, true
}

// GetBytes returns the raw framed wire bytes stored under key, without
// decoding them. The blob server serves entries this way: it never needs
// entry semantics, and a corrupt frame is the client's to detect.
func (c *Cache) GetBytes(key string) ([]byte, bool) {
	if c == nil || len(key) < 2 {
		return nil, false
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return b, true
}

// PutBytes stores pre-framed wire bytes under key, atomically, enforcing
// the byte bound. The frame is verified first (magic, lengths, checksum):
// the blob server uses this to refuse storing garbage a broken client
// sent, without ever decoding entry contents.
func (c *Cache) PutBytes(key string, b []byte) error {
	if c == nil {
		return nil
	}
	if len(key) < 2 {
		return fmt.Errorf("cache put: malformed key %q", key)
	}
	raw, ok := deframeBlob(b)
	if !ok {
		return fmt.Errorf("cache put: malformed frame for key %q", key)
	}
	if err := c.writeBytes(key, b); err != nil {
		return err
	}
	c.rawBytes.Add(int64(len(raw)))
	c.compressedBytes.Add(int64(len(b)))
	return nil
}

// writeBytes is the shared atomic write + usage accounting path.
func (c *Cache) writeBytes(key string, b []byte) error {
	dst := c.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("cache put: %w", err)
	}
	if err := atomicio.WriteFile(dst, b, 0o644); err != nil {
		return fmt.Errorf("cache put: %w", err)
	}
	c.mu.Lock()
	c.recordLocked(key, int64(len(b)))
	c.mu.Unlock()
	return nil
}

// decodeEntry parses entry wire bytes back into an Entry. Any mismatch —
// malformed JSON, wrong schema, wrong key, undecodable diagnostics — reads
// as a miss, exactly like a corrupted entry file. Every Store shares this
// wire form, so the same bytes decode identically whether they came from
// disk or the resident memory store.
func decodeEntry(key string, b []byte) (*Entry, bool) {
	var w wireEntry
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, false
	}
	if w.Schema != entrySchema || w.Key != key {
		return nil, false
	}
	ds, err := diag.Unmarshal(w.Diags)
	if err != nil {
		return nil, false
	}
	return &Entry{
		Diags:      ds,
		Suppressed: w.Suppressed, ParseErrors: w.ParseErrors, SemaErrors: w.SemaErrors,
		Deps: w.Deps, Library: w.Library, Fn: w.Fn,
		Size: int64(len(b)),
	}, true
}

// encodeEntry renders e in the stable wire form (newline-terminated JSON)
// shared by every Store.
func encodeEntry(key string, e *Entry) ([]byte, error) {
	raw, err := diag.Marshal(e.Diags)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(wireEntry{
		Schema: entrySchema, Key: key,
		Diags:      raw,
		Suppressed: e.Suppressed, ParseErrors: e.ParseErrors, SemaErrors: e.SemaErrors,
		Deps: e.Deps, Library: e.Library, Fn: e.Fn,
	})
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Put stores e under key, atomically, framed (compressed + checksummed).
// It returns the bytes written (also recorded in e.Size). A nil cache
// discards the write.
func (c *Cache) Put(key string, e *Entry) (int64, error) {
	if c == nil {
		return 0, nil
	}
	if len(key) < 2 {
		return 0, fmt.Errorf("cache put: malformed key %q", key)
	}
	raw, err := encodeEntry(key, e)
	if err != nil {
		return 0, fmt.Errorf("cache put: %w", err)
	}
	b := frameBlob(raw)
	if err := c.writeBytes(key, b); err != nil {
		return 0, err
	}
	c.rawBytes.Add(int64(len(raw)))
	c.compressedBytes.Add(int64(len(b)))
	e.Size = int64(len(b))
	return e.Size, nil
}

// DepsMatch reports whether every dependency fingerprint recorded in an
// entry still holds against the current interface fingerprints. Symbols
// absent from current read as "", so a symbol appearing in — or vanishing
// from — the library invalidates exactly the entries that mention it.
func DepsMatch(recorded, current map[string]string) bool {
	for name, fp := range recorded {
		if current[name] != fp {
			return false
		}
	}
	return true
}

// Identifiers extracts the deduplicated, sorted identifier set of a
// preprocessed source text. The set over-approximates the module's
// interface references (it includes locals and the module's own names,
// whose fingerprints are stable whenever the source hash is), which keeps
// dependency recording sound without an AST walk.
func Identifiers(src string) []string {
	lx := ctoken.NewLexer("", src)
	seen := map[string]bool{}
	for {
		t := lx.Next()
		if t.Kind == ctoken.EOF {
			break
		}
		if t.Kind == ctoken.Ident {
			seen[t.Text] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
