package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Entries written before compression existed are bare JSON on disk; they
// must still read back as hits.
func TestLegacyUnframedEntriesStillDecode(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "", map[string]string{"a.c": "int x;"})
	raw, err := encodeEntry(key, testEntry())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("legacy unframed entry missed")
	}
	if got.Suppressed != testEntry().Suppressed {
		t.Errorf("legacy entry decoded wrong: %+v", got)
	}
}

func TestDiskCacheStats(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "", map[string]string{"a.c": "int x;"})
	if _, err := c.Put(key, testEntry()); err != nil {
		t.Fatal(err)
	}
	c.Get(key)
	c.Get("00" + strings.Repeat("ab", 31)) // miss
	s := c.Stats()
	if s.Entries != 1 || s.Bytes <= 0 {
		t.Errorf("entries/bytes = %d/%d", s.Entries, s.Bytes)
	}
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", s.Hits, s.Misses)
	}
	if s.RawBytes <= 0 || s.CompressedBytes <= 0 {
		t.Errorf("raw/compressed = %d/%d", s.RawBytes, s.CompressedBytes)
	}
	if s.CompressedBytes >= s.RawBytes {
		t.Errorf("compression did not shrink entry: raw %d, compressed %d", s.RawBytes, s.CompressedBytes)
	}
	// A nil cache reports zeroes.
	var nilc *Cache
	if got := nilc.Stats(); got != (StoreStats{}) {
		t.Errorf("nil cache stats = %+v", got)
	}
}

// A bounded disk store must evict oldest-written entries to stay under the
// byte budget, both on SetMaxBytes shrink and on subsequent Puts.
func TestDiskCacheBounded(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	var size int64
	for i := 0; i < 8; i++ {
		key := Key("v1", "", map[string]string{"a.c": fmt.Sprintf("int x%d;", i)})
		keys = append(keys, key)
		n, err := c.Put(key, testEntry())
		if err != nil {
			t.Fatal(err)
		}
		size = n
		// Distinct mtimes so eviction order (oldest first) is deterministic
		// even on filesystems with coarse timestamps.
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, key[:2], key+".json"), old, old); err != nil {
			t.Fatal(err)
		}
	}

	// Shrinking evicts immediately, oldest first.
	c.SetMaxBytes(4 * size)
	s := c.Stats()
	if s.Bytes > 4*size {
		t.Errorf("bytes %d over budget %d after SetMaxBytes", s.Bytes, 4*size)
	}
	if s.Evictions == 0 {
		t.Error("no evictions recorded after shrink")
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Error("oldest entry survived shrink")
	}
	if _, ok := c.Get(keys[len(keys)-1]); !ok {
		t.Error("newest entry evicted by shrink")
	}

	// Puts keep the store under budget.
	for i := 8; i < 16; i++ {
		key := Key("v1", "", map[string]string{"a.c": fmt.Sprintf("int x%d;", i)})
		if _, err := c.Put(key, testEntry()); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Bytes > 4*size {
		t.Errorf("bytes %d over budget %d after Puts", s.Bytes, 4*size)
	}

	// Unbounding stops eviction.
	c.SetMaxBytes(0)
	for i := 16; i < 20; i++ {
		key := Key("v1", "", map[string]string{"a.c": fmt.Sprintf("int x%d;", i)})
		if _, err := c.Put(key, testEntry()); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Entries < 8 {
		t.Errorf("unbounded store evicted: %+v", s)
	}
}

// A second process opening the same directory sees entries written by the
// first (the index is rebuilt by scanning, not trusted from memory).
func TestDiskCacheScanPicksUpForeignWrites(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "", map[string]string{"a.c": "int x;"})
	if _, err := c1.Put(key, testEntry()); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s := c2.Stats(); s.Entries != 1 {
		t.Errorf("fresh open sees %d entries, want 1", s.Entries)
	}
	if _, ok := c2.Get(key); !ok {
		t.Error("fresh open missed foreign entry")
	}
}

func TestGetBytesPutBytes(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	framed := frameBlob([]byte(`{"schema":"test"}`))
	if err := c.PutBytes(key, framed); err != nil {
		t.Fatal(err)
	}
	got, ok := c.GetBytes(key)
	if !ok || string(got) != string(framed) {
		t.Fatalf("GetBytes round trip failed (ok=%v, %d bytes)", ok, len(got))
	}
	// Malformed frames are rejected at Put so the store never holds bytes
	// it could not serve.
	if err := c.PutBytes(key, []byte("not a frame")); err == nil {
		t.Error("PutBytes accepted unframed bytes")
	}
	if _, ok := c.GetBytes("00" + strings.Repeat("cd", 31)); ok {
		t.Error("GetBytes hit on absent key")
	}
}
