package cache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"golclint/internal/ctoken"
	"golclint/internal/diag"
)

func testEntry() *Entry {
	return &Entry{
		Diags: []*diag.Diagnostic{
			{Code: diag.Leak, Pos: ctoken.Pos{File: "m.c", Line: 9, Col: 2, Off: 88},
				Msg: "Only storage p not released",
				Notes: []diag.Note{{Pos: ctoken.Pos{File: "m.c", Line: 4, Col: 6, Off: 30},
					Msg: "Storage p allocated"}}},
			{Code: diag.NullDeref, Pos: ctoken.Pos{File: "m.c", Line: 12}, Msg: "Dereference of possibly null p"},
		},
		Suppressed:  3,
		ParseErrors: []string{"m.c:2: stray token"},
		SemaErrors:  []string{"m.c:3: redefinition of f"},
		Deps:        map[string]string{"helper": "fp1", "gone": ""},
		Library:     []byte{0x01, 0x02, 0xfe},
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "+null", map[string]string{"m.c": "int x;"})
	want := testEntry()
	n, err := c.Put(key, want)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || want.Size != n {
		t.Errorf("Put size = %d (entry %d)", n, want.Size)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("entry missing after Put")
	}
	if !diag.EqualAll(want.Diags, got.Diags) {
		t.Errorf("diags changed: %+v vs %+v", want.Diags, got.Diags)
	}
	if got.Suppressed != want.Suppressed {
		t.Errorf("suppressed = %d, want %d", got.Suppressed, want.Suppressed)
	}
	if len(got.ParseErrors) != 1 || got.ParseErrors[0] != want.ParseErrors[0] {
		t.Errorf("parse errors = %v", got.ParseErrors)
	}
	if len(got.SemaErrors) != 1 || got.SemaErrors[0] != want.SemaErrors[0] {
		t.Errorf("sema errors = %v", got.SemaErrors)
	}
	if got.Deps["helper"] != "fp1" || got.Deps["gone"] != "" {
		t.Errorf("deps = %v", got.Deps)
	}
	if string(got.Library) != string(want.Library) {
		t.Errorf("library bytes = %v", got.Library)
	}
	if got.Size != n {
		t.Errorf("Get size = %d, want %d", got.Size, n)
	}
}

func TestGetMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(Key("v1", "", map[string]string{"a.c": "x"})); ok {
		t.Fatal("hit on empty cache")
	}
}

// A corrupted, truncated, or wrong-format entry must read as a miss — the
// cache degrades to a cold check, never a wrong answer.
func TestCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "", map[string]string{"a.c": "int x;"})
	if _, err := c.Put(key, testEntry()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, b []byte) {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := c.Get(key); ok {
				t.Fatalf("%s entry produced a hit", name)
			}
		})
	}
	// Payload-level corruption: rewrite the JSON inside the frame so it
	// still deframes cleanly but decodes to a stale or foreign entry.
	raw, ok := deframeBlob(good)
	if !ok {
		t.Fatal("stored entry is not framed")
	}
	reframe := func(s string) []byte { return frameBlob([]byte(s)) }

	corrupt("truncated", good[:len(good)/2])
	corrupt("garbage", []byte("\x00\xffnot json"))
	corrupt("empty", nil)
	corrupt("schema-mismatch", reframe(strings.Replace(string(raw), entrySchema, "golclint-cache/v0", 1)))
	corrupt("key-mismatch", reframe(strings.Replace(string(raw), key, strings.Repeat("ab", 32), 2)))

	// Frame-level corruption: valid header, damaged payload byte (checksum
	// must catch it), and a header advertising the wrong payload length.
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0xff
	corrupt("bad-checksum", flipped)
	shortLen := append([]byte(nil), good...)
	shortLen[len(frameMagic)] ^= 0x01 // perturb rawLen
	corrupt("bad-length", shortLen)

	// Restore the good bytes: the entry must hit again.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("restored entry missed")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("abcd"); ok {
		t.Error("nil cache hit")
	}
	if n, err := c.Put("abcd", testEntry()); err != nil || n != 0 {
		t.Errorf("nil cache Put = %d, %v", n, err)
	}
	if c.Dir() != "" {
		t.Errorf("nil cache Dir = %q", c.Dir())
	}
}

// The key must separate every input: version, flags, file names, file
// contents — and must not depend on map insertion order.
func TestKeyDiscrimination(t *testing.T) {
	base := Key("v1", "+null", map[string]string{"a.c": "int x;", "b.c": "int y;"})
	if Key("v1", "+null", map[string]string{"b.c": "int y;", "a.c": "int x;"}) != base {
		t.Error("key depends on map order")
	}
	variants := []string{
		Key("v2", "+null", map[string]string{"a.c": "int x;", "b.c": "int y;"}),
		Key("v1", "-null", map[string]string{"a.c": "int x;", "b.c": "int y;"}),
		Key("v1", "+null", map[string]string{"a.c": "int x;", "b.c": "int z;"}),
		Key("v1", "+null", map[string]string{"a.c": "int x;", "c.c": "int y;"}),
		Key("v1", "+null", map[string]string{"a.c": "int x;"}),
		// Length-prefixing: moving a byte across a component boundary must
		// change the key even though the concatenation is identical.
		Key("v1", "+nullx", map[string]string{"a.c": "int x;", "b.c": "int y;"}),
		Key("v1x", "+null", map[string]string{"a.c": "int x;", "b.c": "int y;"}),
	}
	seen := map[string]bool{base: true}
	for i, k := range variants {
		if seen[k] {
			t.Errorf("variant %d collides", i)
		}
		seen[k] = true
	}
}

func TestDepsMatch(t *testing.T) {
	rec := map[string]string{"f": "h1", "g": ""}
	if !DepsMatch(rec, map[string]string{"f": "h1"}) {
		t.Error("matching deps rejected")
	}
	if DepsMatch(rec, map[string]string{"f": "h2"}) {
		t.Error("changed fingerprint accepted")
	}
	if DepsMatch(rec, map[string]string{"f": "h1", "g": "new"}) {
		t.Error("newly appearing symbol accepted")
	}
	if DepsMatch(map[string]string{"f": "h1"}, nil) {
		t.Error("vanished symbol accepted")
	}
	if !DepsMatch(nil, map[string]string{"x": "y"}) {
		t.Error("empty recorded deps must always match")
	}
}

func TestIdentifiers(t *testing.T) {
	ids := Identifiers("int f (int n) { return g (n) + g (n) + NULL_ish; } /* h */ \"str i\"")
	want := []string{"NULL_ish", "f", "g", "n"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Errorf("identifiers = %v, want %v", ids, want)
	}
	// Keywords are not identifiers; comments and strings contribute none.
	for _, id := range ids {
		if id == "int" || id == "return" || id == "h" || id == "i" {
			t.Errorf("non-identifier %q extracted", id)
		}
	}
}

// KeyHasher streams the same bytes Key hashes: feeding the same components
// in sorted order must reproduce Key exactly (warm caches survive the
// streaming rewrite), and File's length prefixes must keep shifted
// boundaries distinct.
func TestKeyHasherMatchesKey(t *testing.T) {
	files := map[string]string{"b.c": "int b;", "a.c": "int a;"}
	want := Key("v1", "fp", files)
	kh := NewKeyHasher("v1", "fp")
	for _, n := range []string{"a.c", "b.c"} {
		kh.Component(n)
		kh.Component(files[n])
	}
	if got := kh.Sum(); got != want {
		t.Errorf("streamed key %s != Key() %s", got, want)
	}
}

func TestKeyHasherFileDiscrimination(t *testing.T) {
	sum := func(f func(k *KeyHasher)) string {
		k := NewKeyHasher("v", "f")
		f(k)
		return k.Sum()
	}
	keys := []string{
		sum(func(k *KeyHasher) { k.File("a.c", "text", nil) }),
		sum(func(k *KeyHasher) { k.File("a.c", "text", []string{""}) }),
		sum(func(k *KeyHasher) { k.File("a.c", "text", []string{"e1"}) }),
		sum(func(k *KeyHasher) { k.File("a.c", "text", []string{"e1", "e2"}) }),
		sum(func(k *KeyHasher) { k.File("a.c", "text", []string{"e1e2"}) }),
		sum(func(k *KeyHasher) { k.File("a.c", "texte1", []string{}) }),
		sum(func(k *KeyHasher) { k.File("a.ct", "ext", nil) }),
	}
	seen := map[string]int{}
	for i, k := range keys {
		if j, dup := seen[k]; dup {
			t.Errorf("inputs %d and %d collide: %s", j, i, k)
		}
		seen[k] = i
	}
	// Determinism: the same stream twice yields the same key.
	if a, b := keys[3], sum(func(k *KeyHasher) { k.File("a.c", "text", []string{"e1", "e2"}) }); a != b {
		t.Errorf("same stream hashed differently: %s vs %s", a, b)
	}
}
