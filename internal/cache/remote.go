package cache

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// RemoteStore is a Store backed by a golclint blob server (`golclint
// -cache-serve addr`) over the minimal HTTP blob protocol:
//
//	GET /blob/{key}  → 200 + framed entry bytes, or 404
//	PUT /blob/{key}  → 204 (stored) after server-side frame verification
//
// Keys are content hashes, so the protocol needs no invalidation, versioning
// handshake, or coordination: any number of workers share one server and
// coordinate only through it. The store inherits the cache robustness
// contract on both directions — every network failure, non-200 status,
// over-long body, or corrupt frame reads as a miss, and Put is best-effort
// (a dead server makes runs colder, never wrong and never failed).
type RemoteStore struct {
	base   string
	client *http.Client

	hits, misses, errors      atomic.Int64
	rawBytes, compressedBytes atomic.Int64
}

// ValidBlobKey reports whether key is safe to embed in a blob URL path:
// lowercase hex only (the alphabet Key emits), bounded length. Both the
// client and the blob server enforce this, so a hostile peer can neither
// traverse paths nor smuggle header/flag syntax through a key.
func ValidBlobKey(key string) bool {
	if len(key) < 2 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// NewRemoteStore returns a store talking to the blob server at base (a host
// or URL, e.g. "127.0.0.1:7071" or "http://cache.internal:7071").
func NewRemoteStore(base string) *RemoteStore {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &RemoteStore{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

// Base returns the server URL the store talks to ("" on nil).
func (r *RemoteStore) Base() string {
	if r == nil {
		return ""
	}
	return r.base
}

// Get implements Store. Every failure mode — invalid key, network error,
// non-200, oversized body, corrupt frame, undecodable entry — is a miss.
func (r *RemoteStore) Get(key string) (*Entry, bool) {
	if r == nil || !ValidBlobKey(key) {
		return nil, false
	}
	resp, err := r.client.Get(r.base + "/blob/" + key)
	if err != nil {
		r.errors.Add(1)
		r.misses.Add(1)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		r.misses.Add(1)
		return nil, false
	}
	// Read at most one byte past the largest legal frame: anything longer is
	// corrupt by definition and must not be buffered.
	limit := int64(frameHeader) + maxFrameBytes + 1
	b, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil || int64(len(b)) >= limit {
		r.errors.Add(1)
		r.misses.Add(1)
		return nil, false
	}
	raw, ok := deframeBlob(b)
	if !ok {
		r.misses.Add(1)
		return nil, false
	}
	e, ok := decodeEntry(key, raw)
	if !ok {
		r.misses.Add(1)
		return nil, false
	}
	e.Size = int64(len(b))
	r.hits.Add(1)
	return e, true
}

// Put implements Store. Writes are best-effort: a network or server failure
// is counted and swallowed, because a worker must finish its shard whether
// or not the shared cache accepted its entries.
func (r *RemoteStore) Put(key string, e *Entry) (int64, error) {
	if r == nil {
		return 0, nil
	}
	if !ValidBlobKey(key) {
		return 0, fmt.Errorf("remote store put: invalid key %q", key)
	}
	raw, err := encodeEntry(key, e)
	if err != nil {
		return 0, fmt.Errorf("remote store put: %w", err)
	}
	b := frameBlob(raw)
	e.Size = int64(len(b))
	req, err := http.NewRequest(http.MethodPut, r.base+"/blob/"+key, bytes.NewReader(b))
	if err != nil {
		r.errors.Add(1)
		return e.Size, nil
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client.Do(req)
	if err != nil {
		r.errors.Add(1)
		return e.Size, nil
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		r.errors.Add(1)
		return e.Size, nil
	}
	r.rawBytes.Add(int64(len(raw)))
	r.compressedBytes.Add(int64(len(b)))
	return e.Size, nil
}

// Errors reports transport-level failures (connection refused, bad status,
// oversized body) — distinct from misses, which include ordinary not-found.
func (r *RemoteStore) Errors() int64 {
	if r == nil {
		return 0
	}
	return r.errors.Load()
}

// Stats snapshots the client-side counters. Entries/Bytes are zero: the
// client cannot see the server's directory (GET /stats on the server does).
func (r *RemoteStore) Stats() StoreStats {
	if r == nil {
		return StoreStats{}
	}
	return StoreStats{
		Hits:            r.hits.Load(),
		Misses:          r.misses.Load(),
		RawBytes:        r.rawBytes.Load(),
		CompressedBytes: r.compressedBytes.Load(),
	}
}
