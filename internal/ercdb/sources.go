// Package ercdb provides the toy employee database program from Section 6
// of the paper (originally from Guttag & Horning's Larch book), staged
// through the annotation iterations the paper walks through:
//
//	Bare           no annotations anywhere (the §6 starting point)
//	NullField      after adding /*@null@*/ to the vals field of erc
//	Asserted       after adding the defensive assertions the arrow-access
//	               anomalies point at
//	AllocAnnotated after adding the only/dependent annotations the
//	               allocation pass demands (returns, pool fields, free
//	               parameters) and the out annotation found by completion
//	               checking
//	Final          after fixing the six driver leaks and documenting the
//	               unique constraint on employee_setName's parameter
//
// Tests and benchmarks check each stage against the anomaly classes the
// paper reports (experiments E5-E8 in DESIGN.md).
package ercdb

import "strings"

// Stage selects an annotation iteration.
type Stage int

// Stages, in the order the paper adds annotations.
const (
	Bare Stage = iota
	NullField
	Asserted
	AllocAnnotated
	Final
)

var stageNames = map[Stage]string{
	Bare: "bare", NullField: "nullfield", Asserted: "asserted",
	AllocAnnotated: "allocannotated", Final: "final",
}

// String names the stage.
func (s Stage) String() string { return stageNames[s] }

// Stages lists all stages in order.
func Stages() []Stage { return []Stage{Bare, NullField, Asserted, AllocAnnotated, Final} }

// marker replacement table: each marker expands to "" below its stage and
// to the replacement text at or above it.
type marker struct {
	name  string
	stage Stage
	text  string
}

var markers = []marker{
	// The single null annotation (§6: "one null annotation on a
	// structure field").
	{"@NULL_VALS@", NullField, "/*@null@*/"},
	// Defensive assertions added after the arrow-access anomalies.
	{"@ASSERT_VALS@", Asserted, "assert (c->vals != NULL);"},
	{"@ASSERT_CHOOSE@", Asserted, "assert (s->vals != NULL);"},
	// The only annotations (§6's allocation pass), the dependent return
	// of eref_get, and the out parameter found by completion checking.
	{"@ONLY@", AllocAnnotated, "/*@only@*/"},
	{"@DEPENDENT@", AllocAnnotated, "/*@dependent@*/"},
	{"@OUT@", AllocAnnotated, "/*@out@*/"},
	{"@NULL_DB@", AllocAnnotated, "/*@null@*/"},
	{"@DB_FINAL@", AllocAnnotated, "if (mgrs != NULL)\n\t{\n\t\tempset_final (mgrs);\n\t\tmgrs = NULL;\n\t}\n\tif (nonMgrs != NULL)\n\t{\n\t\tempset_final (nonMgrs);\n\t\tnonMgrs = NULL;\n\t}"},
	// Driver fixes: six releases inserted before reassignments.
	{"@FIX1_ALL@", Final, "empset_final (all);"},
	{"@FIX1_PRINTED@", Final, "free (printed);"},
	{"@FIX1_E1@", Final, "free (e1);"},
	{"@FIX2_ALL@", Final, "empset_final (all);"},
	{"@FIX2_PRINTED@", Final, "free (printed);"},
	{"@FIX2_E1@", Final, "free (e1);"},
	// The unique documentation on employee_setName's parameter.
	{"@UNIQUE@", Final, "/*@unique@*/"},
}

// AnnotationCount returns how many distinct annotated declarations are
// active at the stage (the paper's §6 summary counts 15). An annotation
// repeated on a function's prototype and its definition is one annotated
// declaration, so per marker the header/implementation overlap (the
// pairwise minimum) is subtracted.
func AnnotationCount(st Stage) int {
	n := 0
	for _, m := range markers {
		if !strings.HasPrefix(m.text, "/*@") {
			continue
		}
		if st < m.stage {
			continue
		}
		for name, src := range templates {
			occ := strings.Count(src, m.name)
			n += occ
			if strings.HasSuffix(name, ".c") {
				header := strings.TrimSuffix(name, ".c") + ".h"
				if hsrc, ok := templates[header]; ok {
					dup := strings.Count(hsrc, m.name)
					if dup > occ {
						dup = occ
					}
					n -= dup
				}
			}
		}
	}
	return n
}

// expand instantiates a source template for a stage.
func expand(src string, st Stage) string {
	for _, m := range markers {
		if st >= m.stage {
			src = strings.ReplaceAll(src, m.name, m.text)
		} else {
			src = strings.ReplaceAll(src, m.name, "")
		}
	}
	return src
}

// Sources returns the database program at the given annotation stage as a
// file-name -> contents map (headers resolved through the same map).
func Sources(st Stage) map[string]string {
	out := map[string]string{}
	for name, src := range templates {
		out[name] = expand(src, st)
	}
	return out
}

// CSources returns only the .c files (the translation units to check);
// headers are resolved via Headers through the include mechanism.
func CSources(st Stage) map[string]string {
	out := map[string]string{}
	for name, src := range templates {
		if strings.HasSuffix(name, ".c") {
			out[name] = expand(src, st)
		}
	}
	return out
}

// Headers returns only the header files (for include resolution).
func Headers(st Stage) map[string]string {
	out := map[string]string{}
	for name, src := range templates {
		if strings.HasSuffix(name, ".h") {
			out[name] = expand(src, st)
		}
	}
	return out
}

// TotalLines returns the program's size in source lines at a stage.
func TotalLines(st Stage) int {
	n := 0
	for _, src := range Sources(st) {
		n += strings.Count(src, "\n")
	}
	return n
}

var templates = map[string]string{

	// ------------------------------------------------------------------
	"employee.h": `#include <bool.h>
typedef enum { MALE, FEMALE, gender_ANY } gender;
typedef enum { MGR, NONMGR, job_ANY } job;
typedef struct {
	int ssNum;
	char name[24];
	double salary;
	gender gen;
	job j;
} employee;

extern bool employee_setName (employee *e, @UNIQUE@ char *na);
extern bool employee_equal (employee *e1, employee *e2);
extern void employee_init (@OUT@ employee *e);
extern void employee_initMod (void);
extern @ONLY@ char *employee_sprint (employee *e);
`,

	// ------------------------------------------------------------------
	// Figure 8 of the paper: employee_setName copies a name into the
	// employee's embedded array with strcpy; the unique requirement on
	// strcpy's first argument surfaces the aliasing anomaly (E7).
	"employee.c": `#include <stdlib.h>
#include <string.h>
#include "employee.h"

bool employee_setName (employee *e, @UNIQUE@ char *na)
{
	int i;

	for (i = 0; na[i] != '\0'; i++)
	{
		if (i == 23)
		{
			return FALSE;
		}
	}
	strcpy (e->name, na);
	return TRUE;
}

bool employee_equal (employee *e1, employee *e2)
{
	return ((e1->ssNum == e2->ssNum)
		&& (e1->salary == e2->salary)
		&& (e1->gen == e2->gen)
		&& (e1->j == e2->j)
		&& (strcmp (e1->name, e2->name) == 0));
}

void employee_init (@OUT@ employee *e)
{
	e->ssNum = 0;
	e->salary = 0.0;
	e->gen = gender_ANY;
	e->j = job_ANY;
	e->name[0] = '\0';
}

void employee_initMod (void)
{
}

@ONLY@ char *employee_sprint (employee *e)
{
	char *res;

	res = (char *) malloc (64);
	if (res == NULL)
	{
		exit (EXIT_FAILURE);
	}
	sprintf (res, "%d", e->ssNum);
	strcat (res, e->name);
	return res;
}
`,

	// ------------------------------------------------------------------
	"eref.h": `#include <bool.h>
#include "employee.h"
typedef int eref;

extern void eref_initMod (void);
extern eref eref_alloc (void);
extern void eref_free (eref er);
extern @DEPENDENT@ employee *eref_get (eref er);
`,

	// ------------------------------------------------------------------
	// The eref pool: assigning fresh storage to the pool's fields needs
	// only annotations (the static-variable anomalies of §6's
	// -allimponly pass), and eref_get hands out an internal pointer that
	// must not be treated as fresh (dependent).
	"eref.c": `#include <stdlib.h>
#include <string.h>
#include "eref.h"

typedef struct {
	@ONLY@ employee *conts;
	@ONLY@ int *status;
	int size;
} eref_pool_rec;

static eref_pool_rec eref_pool;

void eref_initMod (void)
{
	employee *allocated_conts;
	int *allocated_status;

	/* The pool may be re-initialized: release the previous arrays. */
	free (eref_pool.conts);
	free (eref_pool.status);

	allocated_conts = (employee *) malloc (16 * sizeof (employee));
	if (allocated_conts == NULL)
	{
		exit (EXIT_FAILURE);
	}
	allocated_status = (int *) malloc (16 * sizeof (int));
	if (allocated_status == NULL)
	{
		exit (EXIT_FAILURE);
	}
	memset (allocated_conts, 0, 16 * sizeof (employee));
	memset (allocated_status, 0, 16 * sizeof (int));
	eref_pool.conts = allocated_conts;
	eref_pool.status = allocated_status;
	eref_pool.size = 16;
}

eref eref_alloc (void)
{
	return 0;
}

void eref_free (eref er)
{
}

@DEPENDENT@ employee *eref_get (eref er)
{
	return &(eref_pool.conts[er]);
}
`,

	// ------------------------------------------------------------------
	// erc.h: the erc_choose macro dereferences c->vals with an arrow
	// access; with the null annotation on vals this is one of the three
	// anomalies the paper reports after the first iteration (E5).
	"erc.h": `#include <bool.h>
#include "eref.h"

typedef struct _elem {
	eref val;
	@NULL_VALS@ @ONLY@ struct _elem *next;
} ercElem;

typedef struct {
	@NULL_VALS@ @ONLY@ ercElem *vals;
	int size;
} ercInfo;

typedef ercInfo *erc;

#define erc_choose(c) ((c->vals)->val)

extern @ONLY@ erc erc_create (void);
extern void erc_clear (erc c);
extern void erc_insert (erc c, eref er);
extern bool erc_delete (erc c, eref er);
extern bool erc_member (erc c, eref er);
extern eref erc_head (erc c);
extern void erc_join (erc c1, erc c2);
extern @ONLY@ char *erc_sprint (erc c);
extern void erc_final (@ONLY@ erc c);
extern int erc_size (erc c);
`,

	// ------------------------------------------------------------------
	// erc.c: erc_create is Figure 7 of the paper, verbatim modulo
	// formatting. The NULL assignment to c->vals produces the paper's
	// first anomaly until the field is annotated null. erc_head and
	// erc_sprint carry requires clauses (size > 0) in the original LCL
	// specification; the checker directs us to add assertions (§6: "The
	// checking has directed us to places where adding assertion checks
	// would be good defensive programming practice").
	"erc.c": `#include <stdlib.h>
#include <assert.h>
#include "erc.h"

@ONLY@ erc erc_create (void)
{
	erc c;

	c = (erc) malloc (sizeof (ercInfo));
	if (c == NULL)
	{
		exit (EXIT_FAILURE);
	}
	c->vals = NULL;
	c->size = 0;
	return c;
}

void erc_clear (erc c)
{
	ercElem *elem;
	ercElem *nxt;

	/* Detach the list first: it is then owned locally and the paper's
	   zero-or-one-iteration loop model sees a consistent c->vals on
	   every path. */
	elem = c->vals;
	c->vals = NULL;
	c->size = 0;
	while (elem != NULL)
	{
		nxt = elem->next;
		free (elem);
		elem = nxt;
	}
}

void erc_insert (erc c, eref er)
{
	ercElem *newElem;

	newElem = (ercElem *) malloc (sizeof (ercElem));
	if (newElem == NULL)
	{
		exit (EXIT_FAILURE);
	}
	newElem->val = er;
	newElem->next = c->vals;
	c->vals = newElem;
	c->size = c->size + 1;
}

bool erc_delete (erc c, eref er)
{
	ercElem *elem;
	ercElem *prev;

	prev = NULL;
	for (elem = c->vals; elem != NULL; elem = elem->next)
	{
		if (elem->val == er)
		{
			if (prev == NULL)
			{
				c->vals = elem->next;
			}
			else
			{
				prev->next = elem->next;
			}
			c->size = c->size - 1;
			free (elem);
			return TRUE;
		}
		prev = elem;
	}
	return FALSE;
}

bool erc_member (erc c, eref er)
{
	ercElem *elem;

	for (elem = c->vals; elem != NULL; elem = elem->next)
	{
		if (elem->val == er)
		{
			return TRUE;
		}
	}
	return FALSE;
}

/* requires erc_size(c) > 0 */
eref erc_head (erc c)
{
	@ASSERT_VALS@
	return c->vals->val;
}

void erc_join (erc c1, erc c2)
{
	ercElem *elem;

	for (elem = c2->vals; elem != NULL; elem = elem->next)
	{
		erc_insert (c1, elem->val);
	}
}

/* requires erc_size(c) > 0 */
@ONLY@ char *erc_sprint (erc c)
{
	char *res;

	res = (char *) malloc (256);
	if (res == NULL)
	{
		exit (EXIT_FAILURE);
	}
	@ASSERT_VALS@
	res[0] = (char) c->vals->val;
	res[1] = '\0';
	return res;
}

void erc_final (@ONLY@ erc c)
{
	erc_clear (c);
	free (c);
}

int erc_size (erc c)
{
	return c->size;
}
`,

	// ------------------------------------------------------------------
	"empset.h": `#include <bool.h>
#include "erc.h"
typedef erc empset;

extern void empset_clear (empset s);
extern bool empset_insert (empset s, eref er);
extern bool empset_delete (empset s, eref er);
extern @ONLY@ empset empset_create (void);
extern void empset_final (@ONLY@ empset s);
extern bool empset_member (eref er, empset s);
extern eref empset_choose (empset s);
extern int empset_size (empset s);
extern @ONLY@ char *empset_sprint (empset s);
`,

	// ------------------------------------------------------------------
	"empset.c": `#include <stdlib.h>
#include <assert.h>
#include "empset.h"

void empset_clear (empset s)
{
	erc_clear (s);
}

bool empset_insert (empset s, eref er)
{
	if (erc_member (s, er))
	{
		return FALSE;
	}
	erc_insert (s, er);
	return TRUE;
}

bool empset_delete (empset s, eref er)
{
	return erc_delete (s, er);
}

@ONLY@ empset empset_create (void)
{
	return erc_create ();
}

void empset_final (@ONLY@ empset s)
{
	erc_final (s);
}

bool empset_member (eref er, empset s)
{
	return erc_member (s, er);
}

/* requires empset_size(s) > 0 */
eref empset_choose (empset s)
{
	@ASSERT_CHOOSE@
	return erc_choose (s);
}

int empset_size (empset s)
{
	return erc_size (s);
}

@ONLY@ char *empset_sprint (empset s)
{
	return erc_sprint (s);
}
`,

	// ------------------------------------------------------------------
	// dbase: the top-level database module — static mutable sets, the
	// paper's "storage reachable from global and static variables".
	"dbase.h": `#include <bool.h>
#include "empset.h"
#include "employee.h"

extern void dbase_initMod (void);
extern bool dbase_hire (eref er, gender g);
extern int dbase_size (gender g);
extern void dbase_finalMod (void);
`,

	"dbase.c": `#include <stdlib.h>
#include "dbase.h"

static @NULL_DB@ @ONLY@ empset mgrs;
static @NULL_DB@ @ONLY@ empset nonMgrs;

void dbase_initMod (void)
{
	/* The database may be re-initialized: release the previous sets
	   (and null the references so every path agrees that the obligation
	   is gone). */
	if (mgrs != NULL)
	{
		empset_final (mgrs);
		mgrs = NULL;
	}
	if (nonMgrs != NULL)
	{
		empset_final (nonMgrs);
		nonMgrs = NULL;
	}
	mgrs = empset_create ();
	nonMgrs = empset_create ();
}

bool dbase_hire (eref er, gender g)
{
	if (mgrs == NULL || nonMgrs == NULL)
	{
		return FALSE;
	}
	if (g == MALE || g == FEMALE)
	{
		return empset_insert (mgrs, er);
	}
	return empset_insert (nonMgrs, er);
}

int dbase_size (gender g)
{
	if (mgrs == NULL || nonMgrs == NULL)
	{
		return 0;
	}
	if (g == gender_ANY)
	{
		return empset_size (mgrs) + empset_size (nonMgrs);
	}
	return empset_size (mgrs);
}

void dbase_finalMod (void)
{
	@DB_FINAL@
}
`,

	// ------------------------------------------------------------------
	// drive.c: the test driver. Before Final, variables referencing
	// allocated storage are reassigned before the old storage is
	// released — the six memory leaks §6 reports.
	"drive.c": `#include <stdlib.h>
#include <stdio.h>
#include "empset.h"
#include "employee.h"

int main (void)
{
	empset all;
	char *printed;
	char *e1;
	eref er;
	employee *emp;

	employee_initMod ();
	eref_initMod ();

	emp = (employee *) malloc (sizeof (employee));
	if (emp == NULL)
	{
		exit (EXIT_FAILURE);
	}
	employee_init (emp);
	employee_setName (emp, "Kaufmann");

	all = empset_create ();
	er = eref_alloc ();
	empset_insert (all, er);

	printed = empset_sprint (all);
	printf ("%s", printed);

	e1 = employee_sprint (eref_get (er));
	printf ("%s", e1);

	/* First rebuild: the originals leak until the releases are added
	   in the final iteration. */
	@FIX1_ALL@
	all = empset_create ();
	empset_insert (all, er);
	@FIX1_PRINTED@
	printed = empset_sprint (all);
	@FIX1_E1@
	e1 = employee_sprint (eref_get (er));
	printf ("%s %s", printed, e1);

	/* Second rebuild. */
	@FIX2_ALL@
	all = empset_create ();
	empset_insert (all, er);
	@FIX2_PRINTED@
	printed = empset_sprint (all);
	@FIX2_E1@
	e1 = employee_sprint (eref_get (er));
	printf ("%s %s", printed, e1);

	free (printed);
	free (e1);
	free (emp);
	empset_final (all);
	return EXIT_SUCCESS;
}
`,
}
