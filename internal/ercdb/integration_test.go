package ercdb

// Cross-validation between the static checker and the run-time baseline:
// the final (statically clean) database must also execute without any
// instrumented-heap errors or leaks, and the pre-fix driver must actually
// leak at run time (the six §6 leaks are real bugs, not checker artifacts).

import (
	"strings"
	"testing"

	"golclint/internal/core"
	"golclint/internal/cpp"
	"golclint/internal/interp"
)

func loadStage(t *testing.T, st Stage) *core.Result {
	t.Helper()
	res := core.CheckSources(CSources(st), core.Options{
		Includes: cpp.MapIncluder(Headers(st)),
	})
	for _, e := range res.ParseErrors {
		t.Fatalf("parse: %v", e)
	}
	return res
}

func TestFinalStageRunsClean(t *testing.T) {
	res := loadStage(t, Final)
	run := interp.New(res.Program, interp.Options{}).Run("main")
	if len(run.Errors) != 0 {
		t.Fatalf("runtime errors in final stage: %v\noutput: %q", run.Errors, run.Output)
	}
	// The paper's §7 residue, reproduced: after static checking, run-time
	// tools still find "storage reachable from global and static
	// variables that was not deallocated. Since LCLint does not do
	// interprocedural program flow analysis, it cannot detect failures to
	// free global storage before execution terminates." Our two residual
	// leaks are exactly the eref pool's arrays (reachable from the static
	// eref_pool).
	if len(run.Leaks) != 2 {
		t.Fatalf("residual leaks = %v, want exactly the 2 pool arrays", run.Leaks)
	}
	for _, lk := range run.Leaks {
		if lk.AllocPos.File != "eref.c" {
			t.Fatalf("unexpected residual leak: %v", lk)
		}
	}
	if run.ExitCode != 0 {
		t.Fatalf("exit = %d", run.ExitCode)
	}
	if !strings.Contains(run.Output, "0") {
		t.Fatalf("unexpected driver output %q", run.Output)
	}
}

// The driver leaks the checker reports before the fixes are real: the
// run-time baseline observes them on the same execution.
func TestUnfixedDriverLeaksAtRuntime(t *testing.T) {
	res := loadStage(t, AllocAnnotated)
	run := interp.New(res.Program, interp.Options{}).Run("main")
	if len(run.Errors) != 0 {
		t.Fatalf("unexpected runtime errors: %v", run.Errors)
	}
	// The six reported reassignment sites lose eight blocks at run time
	// (each leaked set drags its element node along), plus the two
	// global-reachable pool arrays the static checker cannot see (§7).
	if len(run.Leaks) != 10 {
		t.Fatalf("runtime leaks = %d, want 10: %v", len(run.Leaks), run.Leaks)
	}
	fixed := loadStage(t, Final)
	runFixed := interp.New(fixed.Program, interp.Options{}).Run("main")
	if len(run.Leaks)-len(runFixed.Leaks) != 8 {
		t.Fatalf("driver fixes should remove 8 runtime leaks: %d -> %d",
			len(run.Leaks), len(runFixed.Leaks))
	}
}

// Every stage executes (the seeded anomalies are interface-level, not
// crashes) — except that pre-assertion stages still run because the
// driver's data never hits the empty-collection edge.
func TestAllStagesExecute(t *testing.T) {
	for _, st := range Stages() {
		res := loadStage(t, st)
		run := interp.New(res.Program, interp.Options{}).Run("main")
		if run.ExitCode != 0 {
			t.Errorf("stage %s exit = %d (errors %v)", st, run.ExitCode, run.Errors)
		}
		for _, e := range run.Errors {
			t.Errorf("stage %s runtime error: %v", st, e)
		}
	}
}
