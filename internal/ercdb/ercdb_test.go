package ercdb

// Experiments E5-E8 (DESIGN.md): the Section 6 annotation walkthrough on
// the employee database. Each test pins one claim from the paper's
// narrative against the checker's actual output.

import (
	"strings"
	"testing"

	"golclint/internal/core"
	"golclint/internal/cpp"
	"golclint/internal/diag"
	"golclint/internal/flags"
)

func checkStage(t *testing.T, st Stage, fl *flags.Flags) *core.Result {
	t.Helper()
	res := core.CheckSources(CSources(st), core.Options{
		Flags:    fl,
		Includes: cpp.MapIncluder(Headers(st)),
	})
	for _, e := range res.ParseErrors {
		t.Fatalf("stage %s parse error: %v", st, e)
	}
	for _, e := range res.SemaErrors {
		t.Fatalf("stage %s sema error: %v", st, e)
	}
	return res
}

func countCode(res *core.Result, code diag.Code) int {
	n := 0
	for _, d := range res.Diags {
		if d.Code == code {
			n++
		}
	}
	return n
}

func hasDiag(res *core.Result, code diag.Code, substr string) bool {
	for _, d := range res.Diags {
		if d.Code == code && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

// E5a — §6: "One anomaly involving null pointers is reported for the
// function erc_create", with the paper's exact shape: the message points at
// the return, the note at the NULL assignment.
func TestErcCreateNullAnomaly(t *testing.T) {
	res := checkStage(t, Bare, nil)
	found := false
	for _, d := range res.Diags {
		if d.Code == diag.NullReturn && strings.Contains(d.Msg, "Null storage c->vals derivable from return value: c") {
			found = true
			if d.Pos.File != "erc.c" {
				t.Errorf("anomaly in %s, want erc.c", d.Pos.File)
			}
			if len(d.Notes) != 1 || !strings.Contains(d.Notes[0].Msg, "c->vals becomes null") {
				t.Errorf("note wrong: %v", d)
			}
		}
	}
	if !found {
		t.Fatalf("missing erc_create anomaly; got:\n%s", res.Messages())
	}
	// It is the only null-return anomaly at this stage.
	if n := countCode(res, diag.NullReturn); n != 1 {
		t.Errorf("NullReturn count = %d, want 1", n)
	}
}

// E5b — adding the null annotation resolves erc_create and surfaces three
// arrow-access anomalies (the erc_choose macro and the two requires-clause
// sites).
func TestNullFieldArrowAnomalies(t *testing.T) {
	res := checkStage(t, NullField, nil)
	if hasDiag(res, diag.NullReturn, "derivable from return value") {
		t.Fatalf("erc_create anomaly should be fixed:\n%s", res.Messages())
	}
	if n := countCode(res, diag.NullDeref); n != 3 {
		t.Fatalf("arrow anomalies = %d, want 3:\n%s", n, res.Messages())
	}
	// One comes from the erc_choose macro expansion in empset.c.
	if !hasDiag(res, diag.NullDeref, "s->vals") {
		t.Fatalf("missing macro-site anomaly:\n%s", res.Messages())
	}
}

// E5c — the assertions remove all arrow-access anomalies ("The checking has
// directed us to places where adding assertion checks would be good
// defensive programming practice").
func TestAssertionsResolveArrows(t *testing.T) {
	res := checkStage(t, Asserted, nil)
	if n := countCode(res, diag.NullDeref); n != 0 {
		t.Fatalf("arrow anomalies remain:\n%s", res.Messages())
	}
}

// E6a — the allocation pass with -allimponly: every anomaly is in the
// missing-only family, covering the paper's sites: the function returns,
// the static pool fields, and the call to free in erc_final.
func TestAllocPassAnomalies(t *testing.T) {
	fl := flags.Default()
	fl.ImplicitOnly = false
	res := checkStage(t, Asserted, fl)

	wants := []struct {
		code   diag.Code
		substr string
	}{
		// Returns of fresh storage without only (paper: erc_create,
		// erc_sprint; ours adds employee_sprint).
		{diag.LeakReturn, "erc.c:16"},
		{diag.LeakReturn, "erc.c:124"},
		{diag.LeakReturn, "employee.c:53"},
		// Fields of the static pool.
		{diag.Leak, "eref_pool.conts"},
		{diag.Leak, "eref_pool.status"},
		// The call to free in erc_final: "Implicitly temp storage c
		// passed as only param: free (c)".
		{diag.AliasTransfer, "storage c passed as only param: free(c)"},
	}
	for _, w := range wants {
		found := false
		for _, d := range res.Diags {
			if d.Code == w.code && (strings.Contains(d.Msg, w.substr) || strings.Contains(d.Pos.String(), w.substr)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing %v anomaly matching %q; got:\n%s", w.code, w.substr, res.Messages())
		}
	}
	// Every anomaly is allocation- or definition-related (no null
	// anomalies remain).
	if n := countCode(res, diag.NullDeref) + countCode(res, diag.NullReturn); n != 0 {
		t.Errorf("unexpected null anomalies:\n%s", res.Messages())
	}
}

// E6b — the out annotation is discovered through complete-definition
// checking at the employee_init call site.
func TestOutDiscovery(t *testing.T) {
	res := checkStage(t, Asserted, nil)
	if !hasDiag(res, diag.IncompleteDef, "employee_init") {
		t.Fatalf("missing incomplete-definition anomaly at employee_init call:\n%s", res.Messages())
	}
	// Adding /*@out@*/ resolves it.
	res = checkStage(t, AllocAnnotated, nil)
	if hasDiag(res, diag.IncompleteDef, "employee_init") {
		t.Fatalf("out annotation did not resolve the anomaly:\n%s", res.Messages())
	}
}

// E6c — with the only annotations in place, the six driver leaks surface
// ("Six memory leaks are detected in the test driver code where variables
// referencing allocated storage are assigned to new values before the old
// storage is released").
func TestSixDriverLeaks(t *testing.T) {
	res := checkStage(t, AllocAnnotated, nil)
	leaks := 0
	for _, d := range res.Diags {
		if d.Code == diag.Leak && d.Pos.File == "drive.c" &&
			strings.Contains(d.Msg, "not released before assignment") {
			leaks++
		}
	}
	if leaks != 6 {
		t.Fatalf("driver leaks = %d, want 6:\n%s", leaks, res.Messages())
	}
}

// E7 — the unique aliasing anomaly in employee_setName (Figure 8): the
// exact message shape from the paper.
func TestUniqueAnomaly(t *testing.T) {
	res := checkStage(t, AllocAnnotated, nil)
	want := "Parameter 1 (e->name) to function strcpy is declared unique but may be aliased externally by parameter 2 (na)"
	if !hasDiag(res, diag.UniqueAliased, want) {
		t.Fatalf("missing unique anomaly; got:\n%s", res.Messages())
	}
	// Documenting the constraint with unique on the parameter resolves it.
	res = checkStage(t, Final, nil)
	if n := countCode(res, diag.UniqueAliased); n != 0 {
		t.Fatalf("unique anomaly remains at Final:\n%s", res.Messages())
	}
}

// E8 — the final program checks clean under both default flags and
// -allimponly, and the annotation tally is in the paper's ballpark
// (paper: 15 = 1 null + 1 out + 13 only; ours counts every annotation
// marker added across the iterations).
func TestFinalClean(t *testing.T) {
	res := checkStage(t, Final, nil)
	if len(res.Diags) != 0 {
		t.Fatalf("final stage not clean:\n%s", res.Messages())
	}
	fl := flags.Default()
	fl.ImplicitOnly = false
	res = checkStage(t, Final, fl)
	if len(res.Diags) != 0 {
		t.Fatalf("final stage not clean under -allimponly:\n%s", res.Messages())
	}
}

func TestAnnotationTally(t *testing.T) {
	n := AnnotationCount(Final)
	// Paper: 15 annotations. Our reproduction lands within a small
	// neighborhood (the exact split depends on code-shape differences
	// documented in EXPERIMENTS.md).
	if n < 12 || n > 20 {
		t.Fatalf("annotation count = %d, outside the paper's neighborhood", n)
	}
	if AnnotationCount(Bare) != 0 {
		t.Fatal("bare stage should have no annotations")
	}
	if AnnotationCount(NullField) != 2 {
		// The null annotation appears on the two list fields.
		t.Fatalf("null stage annotations = %d", AnnotationCount(NullField))
	}
}

// Anomaly counts decrease monotonically through the workflow's second half
// and the workflow terminates at zero (the paper's "with each iteration
// ... anomalies are added or discovered bugs are fixed").
func TestWorkflowConverges(t *testing.T) {
	var counts []int
	for _, st := range Stages() {
		res := checkStage(t, st, nil)
		counts = append(counts, len(res.Diags))
	}
	if counts[len(counts)-1] != 0 {
		t.Fatalf("did not converge: %v", counts)
	}
	if !(counts[3] < counts[2] && counts[4] < counts[3]) {
		t.Fatalf("not converging: %v", counts)
	}
}

// The program is self-consistent: every stage parses and analyzes without
// frontend errors, and its size is in the paper's ballpark (the paper's
// database is 1000 lines plus 300 lines of specifications).
func TestStagesWellFormed(t *testing.T) {
	for _, st := range Stages() {
		res := checkStage(t, st, nil)
		if res.Program == nil || len(res.Units) != 6 {
			t.Fatalf("stage %s: units = %d", st, len(res.Units))
		}
		for _, fn := range []string{"erc_create", "empset_insert", "employee_setName", "dbase_hire", "main"} {
			if _, ok := res.Program.Lookup(fn); !ok {
				t.Errorf("stage %s: function %s missing", st, fn)
			}
		}
	}
	if n := TotalLines(Final); n < 400 || n > 1500 {
		t.Fatalf("db size = %d lines, want a few hundred", n)
	}
}

// Stage names are stable (used in reports).
func TestStageNames(t *testing.T) {
	want := []string{"bare", "nullfield", "asserted", "allocannotated", "final"}
	for i, st := range Stages() {
		if st.String() != want[i] {
			t.Errorf("stage %d name = %q", i, st.String())
		}
	}
}
