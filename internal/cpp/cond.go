package cpp

import (
	"fmt"
	"strconv"
	"strings"
)

// evalCond evaluates a #if / #elif controlling expression. Supported:
// integer literals, defined(NAME) / defined NAME, identifiers (macro-expanded
// first; undefined identifiers evaluate to 0), unary ! - ~, binary
// * / % + - << >> < > <= >= == != & ^ | && ||, and parentheses.
func (pp *Preprocessor) evalCond(expr string) (bool, error) {
	// First resolve defined(...) so macro expansion does not disturb it.
	resolved := pp.resolveDefined(expr)
	expanded := pp.expand(resolved, map[string]bool{}, "<#if>", 0)
	p := &condParser{src: expanded}
	v, err := p.parseExpr(0)
	if err != nil {
		return false, err
	}
	p.skipSpace()
	if p.i < len(p.src) {
		return false, fmt.Errorf("trailing tokens %q", p.src[p.i:])
	}
	return v != 0, nil
}

// resolveDefined rewrites defined(NAME) and defined NAME into 1/0.
func (pp *Preprocessor) resolveDefined(s string) string {
	var out strings.Builder
	i := 0
	for i < len(s) {
		if isIdentStart(s[i]) {
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			if s[i:j] == "defined" {
				k := j
				for k < len(s) && (s[k] == ' ' || s[k] == '\t') {
					k++
				}
				var name string
				if k < len(s) && s[k] == '(' {
					k++
					for k < len(s) && (s[k] == ' ' || s[k] == '\t') {
						k++
					}
					n := k
					for n < len(s) && isIdentChar(s[n]) {
						n++
					}
					name = s[k:n]
					for n < len(s) && (s[n] == ' ' || s[n] == '\t') {
						n++
					}
					if n < len(s) && s[n] == ')' {
						n++
					}
					k = n
				} else {
					n := k
					for n < len(s) && isIdentChar(s[n]) {
						n++
					}
					name = s[k:n]
					k = n
				}
				if pp.IsDefined(name) {
					out.WriteString("1")
				} else {
					out.WriteString("0")
				}
				i = k
				continue
			}
			out.WriteString(s[i:j])
			i = j
			continue
		}
		out.WriteByte(s[i])
		i++
	}
	return out.String()
}

// condParser is a tiny precedence-climbing parser over the expanded text.
type condParser struct {
	src string
	i   int
}

func (p *condParser) skipSpace() {
	for p.i < len(p.src) && (p.src[p.i] == ' ' || p.src[p.i] == '\t') {
		p.i++
	}
}

func (p *condParser) peekOp() string {
	p.skipSpace()
	two := ""
	if p.i+2 <= len(p.src) {
		two = p.src[p.i : p.i+2]
	}
	switch two {
	case "&&", "||", "==", "!=", "<=", ">=", "<<", ">>":
		return two
	}
	if p.i < len(p.src) {
		c := p.src[p.i]
		switch c {
		case '+', '-', '*', '/', '%', '<', '>', '&', '|', '^':
			return string(c)
		}
	}
	return ""
}

var condPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6, "<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}

func (p *condParser) parseExpr(minPrec int) (int64, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		op := p.peekOp()
		prec, ok := condPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.i += len(op)
		rhs, err := p.parseExpr(prec + 1)
		if err != nil {
			return 0, err
		}
		switch op {
		case "||":
			lhs = b2i(lhs != 0 || rhs != 0)
		case "&&":
			lhs = b2i(lhs != 0 && rhs != 0)
		case "|":
			lhs |= rhs
		case "^":
			lhs ^= rhs
		case "&":
			lhs &= rhs
		case "==":
			lhs = b2i(lhs == rhs)
		case "!=":
			lhs = b2i(lhs != rhs)
		case "<":
			lhs = b2i(lhs < rhs)
		case ">":
			lhs = b2i(lhs > rhs)
		case "<=":
			lhs = b2i(lhs <= rhs)
		case ">=":
			lhs = b2i(lhs >= rhs)
		case "<<":
			lhs <<= uint(rhs & 63)
		case ">>":
			lhs >>= uint(rhs & 63)
		case "+":
			lhs += rhs
		case "-":
			lhs -= rhs
		case "*":
			lhs *= rhs
		case "/":
			if rhs == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			lhs /= rhs
		case "%":
			if rhs == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			lhs %= rhs
		}
	}
}

func (p *condParser) parseUnary() (int64, error) {
	p.skipSpace()
	if p.i >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	switch c := p.src[p.i]; c {
	case '!':
		p.i++
		v, err := p.parseUnary()
		return b2i(v == 0), err
	case '-':
		p.i++
		v, err := p.parseUnary()
		return -v, err
	case '~':
		p.i++
		v, err := p.parseUnary()
		return ^v, err
	case '+':
		p.i++
		return p.parseUnary()
	case '(':
		p.i++
		v, err := p.parseExpr(0)
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.i >= len(p.src) || p.src[p.i] != ')' {
			return 0, fmt.Errorf("missing )")
		}
		p.i++
		return v, nil
	}
	return p.parsePrimary()
}

func (p *condParser) parsePrimary() (int64, error) {
	p.skipSpace()
	start := p.i
	c := p.src[p.i]
	switch {
	case c >= '0' && c <= '9':
		for p.i < len(p.src) && (isIdentChar(p.src[p.i])) {
			p.i++
		}
		text := strings.TrimRight(p.src[start:p.i], "uUlL")
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return 0, fmt.Errorf("bad integer %q", p.src[start:p.i])
		}
		return v, nil
	case isIdentStart(c):
		for p.i < len(p.src) && isIdentChar(p.src[p.i]) {
			p.i++
		}
		// Undefined identifier after expansion: value 0 (C semantics).
		return 0, nil
	case c == '\'':
		j := skipLiteral(p.src, p.i)
		lit := p.src[p.i:j]
		p.i = j
		if len(lit) >= 3 {
			if lit[1] == '\\' {
				switch lit[2] {
				case 'n':
					return '\n', nil
				case 't':
					return '\t', nil
				case '0':
					return 0, nil
				default:
					return int64(lit[2]), nil
				}
			}
			return int64(lit[1]), nil
		}
		return 0, fmt.Errorf("bad character literal %q", lit)
	}
	return 0, fmt.Errorf("unexpected character %q", string(rune(c)))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
