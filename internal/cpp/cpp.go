// Package cpp implements a miniature C preprocessor sufficient for the
// programs the checker consumes: #include "file", object- and function-like
// #define with recursive expansion, #undef, #ifdef/#ifndef/#if/#elif/#else/
// #endif with a small constant-expression evaluator, and backslash line
// continuations. Output is plain C text carrying "# <line> \"<file>\""
// markers so downstream positions refer to the original sources.
//
// The real LCLint used the system preprocessor; this one exists so the
// reproduction is self-contained (DESIGN.md, substitutions table).
//
// A Preprocessor is built for reuse across the files of one run: expansion
// appends into a reusable byte buffer (one string copy per file, at the
// end), predefined macros live in a shared immutable BaseDefines layer
// consulted beneath the per-file overlay, and Reset rewinds the overlay so
// one Preprocessor per worker serves every file that worker touches.
package cpp

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Includer resolves #include "name" to file contents.
type Includer interface {
	// Include returns the contents of the named file, or an error. A file
	// that simply does not exist should be reported as a *NotFoundError so
	// layered includers can distinguish "try the next layer" from real I/O
	// failures (see IsNotFound).
	Include(name string) (string, error)
}

// NotFoundError reports that an includer has no file by the given name.
type NotFoundError struct {
	Name string
}

// Error implements the error interface.
func (e *NotFoundError) Error() string { return fmt.Sprintf("include file %q not found", e.Name) }

// IsNotFound reports whether err is (or wraps) a NotFoundError.
func IsNotFound(err error) bool {
	var nf *NotFoundError
	return errors.As(err, &nf)
}

// MapIncluder resolves includes from an in-memory map.
type MapIncluder map[string]string

// Include implements Includer.
func (m MapIncluder) Include(name string) (string, error) {
	if s, ok := m[name]; ok {
		return s, nil
	}
	return "", &NotFoundError{Name: name}
}

// Error is a preprocessing error with its source location.
type Error struct {
	File string
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

// Macro is a preprocessor macro definition.
type Macro struct {
	Name     string
	Params   []string // nil for object-like macros
	IsFunc   bool
	Body     string
	Variadic bool
}

// BaseDefines is an immutable table of predefined object-like macros,
// built once per run and shared (read-only, so safely concurrently) by
// every Preprocessor in that run. It replaces re-installing the same
// predefinitions from scratch for each file.
type BaseDefines struct {
	macros map[string]*Macro
}

// NewBaseDefines builds a shared base layer from name -> body pairs.
func NewBaseDefines(defs map[string]string) *BaseDefines {
	b := &BaseDefines{macros: make(map[string]*Macro, len(defs))}
	for k, v := range defs {
		b.macros[k] = &Macro{Name: k, Body: v}
	}
	return b
}

// Preprocessor holds macro state across files. Macro definitions from
// directives land in a per-run overlay consulted before the shared base
// layer; #undef writes a nil tombstone so a base macro can be undefined
// without mutating the shared table.
type Preprocessor struct {
	inc    Includer
	base   *BaseDefines      // shared immutable layer; may be nil
	macros map[string]*Macro // overlay; nil value = #undef tombstone
	errs   []*Error
	depth  int

	buf      []byte          // reusable expansion output buffer
	busy     map[string]bool // reusable recursion guard (empty between lines)
	linePool [][]logicalLine // reusable logical-line scratch, one per include depth
}

// maxIncludeDepth bounds nested/recursive inclusion.
const maxIncludeDepth = 40

// New returns a Preprocessor using inc to resolve #include directives.
// A nil inc rejects all includes.
func New(inc Includer) *Preprocessor {
	return &Preprocessor{inc: inc, macros: map[string]*Macro{}}
}

// NewShared is New with a shared immutable base-define layer underneath
// the per-run macro table.
func NewShared(inc Includer, base *BaseDefines) *Preprocessor {
	return &Preprocessor{inc: inc, base: base, macros: map[string]*Macro{}}
}

// Reset clears per-file state — overlay macro definitions, errors, include
// depth — while keeping the shared base layer and the reusable buffers, so
// one Preprocessor serves many files in sequence.
func (pp *Preprocessor) Reset() {
	clear(pp.macros)
	pp.errs = nil
	pp.depth = 0
}

// lookup resolves a macro name through the overlay, then the base layer.
// A tombstoned (#undef) name resolves to nil even when the base defines it.
func (pp *Preprocessor) lookup(name string) *Macro {
	if m, ok := pp.macros[name]; ok {
		return m
	}
	if pp.base != nil {
		return pp.base.macros[name]
	}
	return nil
}

// Define installs an object-like macro (e.g. predefining NULL).
func (pp *Preprocessor) Define(name, body string) {
	pp.macros[name] = &Macro{Name: name, Body: body}
}

// DefineFunc installs a function-like macro.
func (pp *Preprocessor) DefineFunc(name string, params []string, body string) {
	pp.macros[name] = &Macro{Name: name, Params: params, IsFunc: true, Body: body}
}

// IsDefined reports whether the named macro is currently defined.
func (pp *Preprocessor) IsDefined(name string) bool {
	return pp.lookup(name) != nil
}

// Macros returns the names of all currently defined macros, sorted.
func (pp *Preprocessor) Macros() []string {
	seen := map[string]bool{}
	if pp.base != nil {
		for n := range pp.base.macros {
			seen[n] = true
		}
	}
	for n, m := range pp.macros {
		if m == nil {
			delete(seen, n)
		} else {
			seen[n] = true
		}
	}
	ns := make([]string, 0, len(seen))
	for n := range seen {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return ns
}

// Errors returns the accumulated preprocessing errors.
func (pp *Preprocessor) Errors() []*Error { return pp.errs }

func (pp *Preprocessor) errorf(file string, line int, format string, args ...interface{}) {
	pp.errs = append(pp.errs, &Error{File: file, Line: line, Msg: fmt.Sprintf(format, args...)})
}

// condState tracks one level of conditional inclusion.
type condState struct {
	active     bool // this branch is being emitted
	everActive bool // some earlier branch of this #if chain was emitted
	parentLive bool // the enclosing context is being emitted
	sawElse    bool
	startLine  int
}

// appendLineMarker writes "# <line> \"<file>\"\n" (byte-identical to the
// fmt.Fprintf("# %d %q\n", ...) form it replaces).
func appendLineMarker(b []byte, line int, file string) []byte {
	b = append(b, '#', ' ')
	b = strconv.AppendInt(b, int64(line), 10)
	b = append(b, ' ')
	b = strconv.AppendQuote(b, file)
	return append(b, '\n')
}

// Process preprocesses src (logical name file) and returns the expanded text
// with line markers. The expansion builds in the Preprocessor's reusable
// buffer; the returned string is the single copy made per file.
func (pp *Preprocessor) Process(file, src string) string {
	pp.buf = pp.buf[:0]
	pp.buf = appendLineMarker(pp.buf, 1, file)
	pp.processInto(file, src)
	return string(pp.buf)
}

// getLines checks a logical-line scratch slice out of the pool (one is in
// use per active include level, so recursion cannot clobber a caller's).
func (pp *Preprocessor) getLines() []logicalLine {
	if n := len(pp.linePool); n > 0 {
		s := pp.linePool[n-1]
		pp.linePool = pp.linePool[:n-1]
		return s[:0]
	}
	return nil
}

func (pp *Preprocessor) putLines(s []logicalLine) {
	pp.linePool = append(pp.linePool, s)
}

func (pp *Preprocessor) processInto(file, src string) {
	lines := splitLogicalLinesInto(pp.getLines(), src)
	defer pp.putLines(lines)
	var conds []condState

	live := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}

	if pp.busy == nil {
		pp.busy = map[string]bool{}
	}

	for _, ll := range lines {
		text := ll.text
		lineNo := ll.line
		trimmed := strings.TrimSpace(text)
		if strings.HasPrefix(trimmed, "#") {
			dir, rest := splitDirective(trimmed)
			switch dir {
			case "ifdef", "ifndef":
				name := strings.TrimSpace(rest)
				val := pp.IsDefined(name)
				if dir == "ifndef" {
					val = !val
				}
				conds = append(conds, condState{active: val && live(), everActive: val, parentLive: live(), startLine: lineNo})
			case "if":
				v, err := pp.evalCond(rest)
				if err != nil {
					pp.errorf(file, lineNo, "bad #if expression: %v", err)
					v = false
				}
				conds = append(conds, condState{active: v && live(), everActive: v, parentLive: live(), startLine: lineNo})
			case "elif":
				if len(conds) == 0 {
					pp.errorf(file, lineNo, "#elif without #if")
					break
				}
				c := &conds[len(conds)-1]
				if c.sawElse {
					pp.errorf(file, lineNo, "#elif after #else")
				}
				v, err := pp.evalCond(rest)
				if err != nil {
					pp.errorf(file, lineNo, "bad #elif expression: %v", err)
					v = false
				}
				c.active = v && !c.everActive && c.parentLive
				if v {
					c.everActive = true
				}
			case "else":
				if len(conds) == 0 {
					pp.errorf(file, lineNo, "#else without #if")
					break
				}
				c := &conds[len(conds)-1]
				if c.sawElse {
					pp.errorf(file, lineNo, "duplicate #else")
				}
				c.sawElse = true
				c.active = !c.everActive && c.parentLive
			case "endif":
				if len(conds) == 0 {
					pp.errorf(file, lineNo, "#endif without #if")
					break
				}
				conds = conds[:len(conds)-1]
			case "define":
				if live() {
					pp.define(file, lineNo, rest)
				}
			case "undef":
				if live() {
					// Tombstone, not delete: the name may be defined in the
					// shared base layer, which must stay untouched.
					pp.macros[strings.TrimSpace(rest)] = nil
				}
			case "include":
				if live() {
					pp.include(file, lineNo, rest)
				}
			case "pragma", "error", "line":
				// #pragma ignored; #error reported only when live.
				if dir == "error" && live() {
					pp.errorf(file, lineNo, "#error %s", strings.TrimSpace(rest))
				}
			default:
				if live() {
					pp.errorf(file, lineNo, "unknown directive #%s", dir)
				}
			}
			// Keep line numbering aligned (including joined continuations).
			for i := 0; i <= ll.extra; i++ {
				pp.buf = append(pp.buf, '\n')
			}
			continue
		}
		if !live() {
			for i := 0; i <= ll.extra; i++ {
				pp.buf = append(pp.buf, '\n')
			}
			continue
		}
		pp.expandInto(text, pp.busy, file, lineNo)
		pp.buf = append(pp.buf, '\n')
		// Logical lines that consumed continuations must re-pad so that
		// subsequent lines keep their original numbers.
		for i := 0; i < ll.extra; i++ {
			pp.buf = append(pp.buf, '\n')
		}
	}
	for _, c := range conds {
		pp.errorf(file, c.startLine, "unterminated conditional (#if without #endif)")
	}
}

// logicalLine is a source line after backslash-continuation joining.
type logicalLine struct {
	text  string
	line  int // original 1-based starting line
	extra int // how many physical lines were joined beyond the first
}

// splitLogicalLinesInto splits src into logical lines, appending into dst
// (reusing its capacity). Line text is zero-copy except when backslash
// continuations force a join.
func splitLogicalLinesInto(dst []logicalLine, src string) []logicalLine {
	dst = dst[:0]
	lineNo := 1
	start := 0
	for {
		rel := strings.IndexByte(src[start:], '\n')
		isLast := rel < 0
		end := len(src)
		if !isLast {
			end = start + rel
		}
		text := src[start:end]
		startLine := lineNo
		extra := 0
		for strings.HasSuffix(text, "\\") && !isLast {
			nstart := end + 1
			nrel := strings.IndexByte(src[nstart:], '\n')
			isLast = nrel < 0
			nend := len(src)
			if !isLast {
				nend = nstart + nrel
			}
			text = text[:len(text)-1] + " " + src[nstart:nend]
			end = nend
			extra++
			lineNo++
		}
		dst = append(dst, logicalLine{text: text, line: startLine, extra: extra})
		if isLast {
			break
		}
		start = end + 1
		lineNo++
	}
	// Drop the phantom line after a trailing newline.
	if n := len(dst); n > 0 && dst[n-1].text == "" && strings.HasSuffix(src, "\n") {
		dst = dst[:n-1]
	}
	return dst
}

func splitDirective(trimmed string) (dir, rest string) {
	s := strings.TrimSpace(trimmed[1:]) // after '#'
	i := 0
	for i < len(s) && (s[i] >= 'a' && s[i] <= 'z') {
		i++
	}
	return s[:i], s[i:]
}

func (pp *Preprocessor) define(file string, line int, rest string) {
	rest = strings.TrimLeft(rest, " \t")
	i := 0
	for i < len(rest) && isIdentChar(rest[i]) {
		i++
	}
	if i == 0 {
		pp.errorf(file, line, "#define missing name")
		return
	}
	name := rest[:i]
	if i < len(rest) && rest[i] == '(' {
		// Function-like: parse parameter list.
		j := strings.IndexByte(rest[i:], ')')
		if j < 0 {
			pp.errorf(file, line, "#define %s: unterminated parameter list", name)
			return
		}
		paramsText := rest[i+1 : i+j]
		body := strings.TrimSpace(rest[i+j+1:])
		var params []string
		variadic := false
		for _, p := range strings.Split(paramsText, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if p == "..." {
				variadic = true
				continue
			}
			params = append(params, p)
		}
		pp.macros[name] = &Macro{Name: name, Params: params, IsFunc: true, Body: body, Variadic: variadic}
		return
	}
	pp.macros[name] = &Macro{Name: name, Body: strings.TrimSpace(rest[i:])}
}

func (pp *Preprocessor) include(file string, line int, rest string) {
	rest = strings.TrimSpace(rest)
	var name string
	switch {
	case strings.HasPrefix(rest, "\""):
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			pp.errorf(file, line, "bad #include syntax")
			return
		}
		name = rest[1 : 1+end]
	case strings.HasPrefix(rest, "<"):
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			pp.errorf(file, line, "bad #include syntax")
			return
		}
		name = rest[1:end]
	default:
		pp.errorf(file, line, "bad #include syntax")
		return
	}
	if pp.inc == nil {
		pp.errorf(file, line, "includes not supported here (%q)", name)
		return
	}
	if pp.depth >= maxIncludeDepth {
		pp.errorf(file, line, "include depth exceeds %d (recursive include of %q?)", maxIncludeDepth, name)
		return
	}
	src, err := pp.inc.Include(name)
	if err != nil {
		pp.errorf(file, line, "%v", err)
		return
	}
	pp.depth++
	pp.buf = appendLineMarker(pp.buf, 1, name)
	pp.processInto(name, src)
	pp.depth--
	// Resume at the directive's own line: the caller emits the padding
	// newline for the #include line itself, which advances to line+1.
	pp.buf = appendLineMarker(pp.buf, line, file)
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// expand performs macro expansion on one logical line and returns the
// result as a string (used by the #if evaluator). The hot path is
// expandInto, which appends to the output buffer without intermediate
// strings; this wrapper borrows the tail of that buffer as scratch.
func (pp *Preprocessor) expand(text string, busy map[string]bool, file string, line int) string {
	save := len(pp.buf)
	pp.expandInto(text, busy, file, line)
	s := string(pp.buf[save:])
	pp.buf = pp.buf[:save]
	return s
}

// expandInto performs macro expansion on one logical line of ordinary
// text, appending to pp.buf. Non-macro spans copy in bulk; only macro
// invocations recurse. busy guards against recursive self-expansion.
func (pp *Preprocessor) expandInto(text string, busy map[string]bool, file string, line int) {
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '"' || c == '\'':
			j := skipLiteral(text, i)
			pp.buf = append(pp.buf, text[i:j]...)
			i = j
		case c == '/' && i+1 < len(text) && text[i+1] == '/':
			pp.buf = append(pp.buf, text[i:]...)
			i = len(text)
		case c == '/' && i+1 < len(text) && text[i+1] == '*':
			// Copy comment verbatim (annotations live in comments!).
			j := strings.Index(text[i+2:], "*/")
			if j < 0 {
				pp.buf = append(pp.buf, text[i:]...)
				i = len(text)
			} else {
				pp.buf = append(pp.buf, text[i:i+2+j+2]...)
				i += 2 + j + 2
			}
		case isIdentStart(c):
			j := i
			for j < len(text) && isIdentChar(text[j]) {
				j++
			}
			word := text[i:j]
			m := pp.lookup(word)
			if m == nil || busy[word] {
				pp.buf = append(pp.buf, word...)
				i = j
				break
			}
			if m.IsFunc {
				// Needs a following '(' to expand.
				k := j
				for k < len(text) && (text[k] == ' ' || text[k] == '\t') {
					k++
				}
				if k >= len(text) || text[k] != '(' {
					pp.buf = append(pp.buf, word...)
					i = j
					break
				}
				args, end, err := parseMacroArgs(text, k)
				if err != nil {
					pp.errorf(file, line, "macro %s: %v", word, err)
					pp.buf = append(pp.buf, word...)
					i = j
					break
				}
				if len(args) == 1 && args[0] == "" && len(m.Params) == 0 {
					args = nil
				}
				if len(args) < len(m.Params) || (len(args) > len(m.Params) && !m.Variadic) {
					pp.errorf(file, line, "macro %s expects %d arguments, got %d", word, len(m.Params), len(args))
				}
				body := substituteParams(m, args)
				busy[word] = true
				pp.expandInto(body, busy, file, line)
				delete(busy, word)
				i = end
			} else {
				busy[word] = true
				pp.expandInto(m.Body, busy, file, line)
				delete(busy, word)
				i = j
			}
		default:
			// Bulk-copy up to the next byte that could start a literal,
			// comment, or macro name.
			j := i + 1
			for j < len(text) {
				d := text[j]
				if d == '"' || d == '\'' || d == '/' || isIdentStart(d) {
					break
				}
				j++
			}
			pp.buf = append(pp.buf, text[i:j]...)
			i = j
		}
	}
}

// skipLiteral returns the index just past the string or char literal
// starting at i.
func skipLiteral(text string, i int) int {
	q := text[i]
	j := i + 1
	for j < len(text) {
		if text[j] == '\\' {
			j += 2
			continue
		}
		if text[j] == q {
			return j + 1
		}
		j++
	}
	return len(text)
}

// parseMacroArgs parses "(a, b, ...)" starting at the '(' at index k.
// It returns raw argument texts and the index just past ')'.
func parseMacroArgs(text string, k int) ([]string, int, error) {
	depth := 0
	var args []string
	var cur strings.Builder
	i := k
	for i < len(text) {
		c := text[i]
		switch {
		case c == '"' || c == '\'':
			j := skipLiteral(text, i)
			cur.WriteString(text[i:j])
			i = j
			continue
		case c == '(':
			depth++
			if depth > 1 {
				cur.WriteByte(c)
			}
		case c == ')':
			depth--
			if depth == 0 {
				args = append(args, strings.TrimSpace(cur.String()))
				return args, i + 1, nil
			}
			cur.WriteByte(c)
		case c == ',' && depth == 1:
			args = append(args, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
		i++
	}
	return nil, i, fmt.Errorf("unterminated argument list")
}

// substituteParams replaces parameter names in the macro body with argument
// texts (word-boundary aware; skips string literals). The # and ##
// operators: # stringizes the following parameter; ## splices by deleting
// itself and adjacent spaces.
func substituteParams(m *Macro, args []string) string {
	argOf := map[string]string{}
	for i, p := range m.Params {
		if i < len(args) {
			argOf[p] = args[i]
		} else {
			argOf[p] = ""
		}
	}
	if m.Variadic {
		if len(args) > len(m.Params) {
			argOf["__VA_ARGS__"] = strings.Join(args[len(m.Params):], ", ")
		} else {
			argOf["__VA_ARGS__"] = ""
		}
	}
	body := m.Body
	var out strings.Builder
	i := 0
	for i < len(body) {
		c := body[i]
		switch {
		case c == '"' || c == '\'':
			j := skipLiteral(body, i)
			out.WriteString(body[i:j])
			i = j
		case c == '#' && i+1 < len(body) && body[i+1] == '#':
			// Token paste: trim trailing spaces already emitted and skip
			// following spaces.
			s := strings.TrimRight(out.String(), " \t")
			out.Reset()
			out.WriteString(s)
			i += 2
			for i < len(body) && (body[i] == ' ' || body[i] == '\t') {
				i++
			}
		case c == '#' && i+1 < len(body) && isIdentStart(body[i+1]):
			j := i + 1
			for j < len(body) && isIdentChar(body[j]) {
				j++
			}
			word := body[i+1 : j]
			if a, ok := argOf[word]; ok {
				out.WriteString(strconv.Quote(a))
				i = j
			} else {
				out.WriteByte(c)
				i++
			}
		case isIdentStart(c):
			j := i
			for j < len(body) && isIdentChar(body[j]) {
				j++
			}
			word := body[i:j]
			if a, ok := argOf[word]; ok {
				out.WriteString(a)
			} else {
				out.WriteString(word)
			}
			i = j
		default:
			out.WriteByte(c)
			i++
		}
	}
	return out.String()
}
