package cpp

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func process(t *testing.T, src string) string {
	t.Helper()
	pp := New(nil)
	out := pp.Process("t.c", src)
	for _, e := range pp.Errors() {
		t.Errorf("unexpected cpp error: %v", e)
	}
	return out
}

// stripMarkers removes line markers for content comparison.
func stripMarkers(s string) string {
	var keep []string
	for _, ln := range strings.Split(s, "\n") {
		if strings.HasPrefix(ln, "# ") {
			continue
		}
		keep = append(keep, ln)
	}
	return strings.Join(keep, "\n")
}

func TestObjectMacro(t *testing.T) {
	out := process(t, "#define N 10\nint a[N];\n")
	if !strings.Contains(out, "int a[10];") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestFunctionMacro(t *testing.T) {
	out := process(t, "#define SQR(x) ((x)*(x))\nint y = SQR(3+1);\n")
	if !strings.Contains(out, "int y = ((3+1)*(3+1));") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestFunctionMacroMultiArg(t *testing.T) {
	out := process(t, "#define MAX(a,b) ((a)>(b)?(a):(b))\nint z = MAX(f(1,2), 3);\n")
	if !strings.Contains(out, "int z = ((f(1,2))>(3)?(f(1,2)):(3));") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestMacroNotExpandedInString(t *testing.T) {
	out := process(t, "#define N 10\nchar *s = \"N\"; int v = N;\n")
	if !strings.Contains(out, `"N"`) || !strings.Contains(out, "int v = 10;") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestMacroNotExpandedInComment(t *testing.T) {
	out := process(t, "#define only 1\nint x; /*@only@*/ char *p;\n")
	if !strings.Contains(out, "/*@only@*/") {
		t.Fatalf("annotation comment was mangled:\n%s", out)
	}
}

func TestRecursiveMacroStops(t *testing.T) {
	out := process(t, "#define A A\nint A;\n")
	if !strings.Contains(out, "int A;") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestMutualRecursionStops(t *testing.T) {
	out := process(t, "#define A B\n#define B A\nint A;\n")
	// Expansion must terminate; A -> B -> (A busy) stays A.
	if !strings.Contains(stripMarkers(out), "int A;") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestUndef(t *testing.T) {
	out := process(t, "#define N 1\n#undef N\nint v = N;\n")
	if !strings.Contains(out, "int v = N;") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestIfdef(t *testing.T) {
	out := process(t, "#define FOO\n#ifdef FOO\nint a;\n#else\nint b;\n#endif\n#ifndef FOO\nint c;\n#endif\n")
	if !strings.Contains(out, "int a;") || strings.Contains(out, "int b;") || strings.Contains(out, "int c;") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestIfExpr(t *testing.T) {
	src := `#define VER 3
#if VER >= 2 && defined(VER)
int yes;
#elif VER == 1
int one;
#else
int no;
#endif
`
	out := process(t, src)
	if !strings.Contains(out, "int yes;") || strings.Contains(out, "int one;") || strings.Contains(out, "int no;") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestIfArith(t *testing.T) {
	cases := []struct {
		cond string
		want bool
	}{
		{"1+2*3 == 7", true}, {"(1+2)*3 == 9", true}, {"10/3 == 3", true},
		{"10%3 == 1", true}, {"1<<4 == 16", true}, {"!0", true}, {"!5", false},
		{"~0 == -1", true}, {"-3 < -2", true}, {"'a' == 97", true},
		{"0x10 == 16", true}, {"UNDEF_THING", false}, {"1 || UNDEF", true},
		{"5 & 3", true}, {"5 ^ 5", false}, {"1 | 0", true}, {"2 >= 2", true},
		{"2 <= 1", false}, {"3 != 3", false}, {"16 >> 2 == 4", true},
	}
	for _, c := range cases {
		pp := New(nil)
		got, err := pp.evalCond(c.cond)
		if err != nil {
			t.Errorf("%q: %v", c.cond, err)
			continue
		}
		if got != c.want {
			t.Errorf("#if %q = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestIfErrors(t *testing.T) {
	for _, bad := range []string{"1/0", "1 +", "(1", "@", "1 1"} {
		pp := New(nil)
		if _, err := pp.evalCond(bad); err == nil {
			t.Errorf("evalCond(%q) succeeded, want error", bad)
		}
	}
}

func TestNestedConditionals(t *testing.T) {
	src := `#define A
#ifdef A
#ifdef B
int ab;
#else
int a_only;
#endif
#else
int neither;
#endif
`
	out := process(t, src)
	if !strings.Contains(out, "int a_only;") || strings.Contains(out, "int ab;") || strings.Contains(out, "int neither;") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestInactiveBranchSkipsDirectives(t *testing.T) {
	src := "#ifdef NOPE\n#define X 1\n#error should not fire\n#endif\nint v = X;\n"
	pp := New(nil)
	out := pp.Process("t.c", src)
	if len(pp.Errors()) != 0 {
		t.Fatalf("errors in inactive branch: %v", pp.Errors())
	}
	if !strings.Contains(out, "int v = X;") {
		t.Fatalf("X should be undefined:\n%s", out)
	}
}

func TestInclude(t *testing.T) {
	inc := MapIncluder{"defs.h": "#define SIZE 4\ntypedef int myint;\n"}
	pp := New(inc)
	out := pp.Process("main.c", "#include \"defs.h\"\nmyint arr[SIZE];\n")
	if len(pp.Errors()) != 0 {
		t.Fatalf("errors: %v", pp.Errors())
	}
	if !strings.Contains(out, "typedef int myint;") || !strings.Contains(out, "myint arr[4];") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "# 1 \"defs.h\"") || !strings.Contains(out, "\"main.c\"") {
		t.Fatalf("missing line markers:\n%s", out)
	}
}

func TestIncludeAngle(t *testing.T) {
	inc := MapIncluder{"stdlib.h": "typedef unsigned long size_t;\n"}
	pp := New(inc)
	out := pp.Process("m.c", "#include <stdlib.h>\n")
	if len(pp.Errors()) != 0 {
		t.Fatalf("errors: %v", pp.Errors())
	}
	if !strings.Contains(out, "size_t") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestIncludeMissing(t *testing.T) {
	pp := New(MapIncluder{})
	pp.Process("m.c", "#include \"nope.h\"\n")
	if len(pp.Errors()) != 1 {
		t.Fatalf("want 1 error, got %v", pp.Errors())
	}
}

func TestRecursiveIncludeBounded(t *testing.T) {
	inc := MapIncluder{"a.h": "#include \"a.h\"\n"}
	pp := New(inc)
	pp.Process("m.c", "#include \"a.h\"\n")
	found := false
	for _, e := range pp.Errors() {
		if strings.Contains(e.Msg, "depth") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want include-depth error, got %v", pp.Errors())
	}
}

func TestLineContinuation(t *testing.T) {
	out := process(t, "#define LONG 1 + \\\n 2\nint v = LONG;\nint w;\n")
	if !strings.Contains(out, "int v = 1 +   2;") {
		t.Fatalf("output:\n%s", out)
	}
	// Line numbering preserved: "int w;" is physical line 4.
	lines := strings.Split(out, "\n")
	// First line is a marker; so source line N is output line N+1.
	if lines[4] != "int w;" {
		t.Fatalf("line padding broken: %q (all: %q)", lines[4], lines)
	}
}

func TestStringize(t *testing.T) {
	out := process(t, "#define STR(x) #x\nchar *s = STR(hello);\n")
	if !strings.Contains(out, `char *s = "hello";`) {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTokenPaste(t *testing.T) {
	out := process(t, "#define GLUE(a,b) a ## b\nint GLUE(foo, bar) = 1;\n")
	if !strings.Contains(out, "int foobar = 1;") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestVariadicMacro(t *testing.T) {
	out := process(t, "#define LOG(fmt, ...) printf(fmt, __VA_ARGS__)\nLOG(\"%d %d\", 1, 2);\n")
	if !strings.Contains(out, `printf("%d %d", 1, 2);`) {
		t.Fatalf("output:\n%s", out)
	}
}

func TestUnterminatedConditional(t *testing.T) {
	pp := New(nil)
	pp.Process("t.c", "#ifdef X\nint a;\n")
	if len(pp.Errors()) == 0 {
		t.Fatal("want unterminated-conditional error")
	}
}

func TestDanglingElse(t *testing.T) {
	pp := New(nil)
	pp.Process("t.c", "#else\n#endif\n#elif 1\n")
	if len(pp.Errors()) < 2 {
		t.Fatalf("want dangling errors, got %v", pp.Errors())
	}
}

func TestPredefine(t *testing.T) {
	pp := New(nil)
	pp.Define("NULL", "((void*)0)")
	pp.DefineFunc("ID", []string{"x"}, "x")
	out := pp.Process("t.c", "char *p = NULL; int v = ID(3);\n")
	if !strings.Contains(out, "char *p = ((void*)0); int v = 3;") {
		t.Fatalf("output:\n%s", out)
	}
	if !pp.IsDefined("NULL") || pp.IsDefined("BOGUS") {
		t.Fatal("IsDefined wrong")
	}
	ms := pp.Macros()
	if len(ms) != 2 || ms[0] != "ID" || ms[1] != "NULL" {
		t.Fatalf("Macros() = %v", ms)
	}
}

func TestErrorFormat(t *testing.T) {
	e := &Error{File: "x.c", Line: 3, Msg: "boom"}
	if e.Error() != "x.c:3: boom" {
		t.Fatalf("Error() = %q", e.Error())
	}
}

// Property: output of Process always has content lines aligned such that the
// number of newline-separated lines is >= input lines (padding never loses
// lines), and processing is deterministic.
func TestProcessDeterministic(t *testing.T) {
	f := func(words []uint8) bool {
		vocab := []string{"#define A 1\n", "int x = A;\n", "#ifdef A\n", "#endif\n",
			"char *s = \"A\";\n", "/*@only@*/ char *p;\n", "int f(int a) { return a; }\n"}
		var b strings.Builder
		opens := 0
		for _, w := range words {
			s := vocab[int(w)%len(vocab)]
			if strings.HasPrefix(s, "#ifdef") {
				opens++
			}
			if strings.HasPrefix(s, "#endif") {
				if opens == 0 {
					continue
				}
				opens--
			}
			b.WriteString(s)
		}
		for ; opens > 0; opens-- {
			b.WriteString("#endif\n")
		}
		src := b.String()
		p1 := New(nil).Process("p.c", src)
		p2 := New(nil).Process("p.c", src)
		return p1 == p2
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// A reused shared-base Preprocessor behaves exactly like a fresh one:
// Reset clears the per-file macro overlay and error list, and the reused
// expansion buffer produces byte-identical output.
func TestResetReuse(t *testing.T) {
	base := NewBaseDefines(map[string]string{"BASE": "7"})
	pp := NewShared(nil, base)

	first := "#define LOCAL 1\nint a = LOCAL + BASE;\n#include \"gone.h\"\n"
	got1 := pp.Process("a.c", first)
	if !strings.Contains(got1, "int a = 1 + 7;") {
		t.Errorf("first file expanded wrong:\n%s", got1)
	}
	if len(pp.Errors()) != 1 {
		t.Fatalf("want 1 include error, got %v", pp.Errors())
	}

	pp.Reset()
	second := "int b = LOCAL;\nint c = BASE;\n"
	got2 := pp.Process("b.c", second)
	if len(pp.Errors()) != 0 {
		t.Errorf("errors survived Reset: %v", pp.Errors())
	}
	if !strings.Contains(got2, "int b = LOCAL;") {
		t.Errorf("first file's #define leaked across Reset:\n%s", got2)
	}
	if !strings.Contains(got2, "int c = 7;") {
		t.Errorf("base define lost after Reset:\n%s", got2)
	}

	fresh := NewShared(nil, base).Process("b.c", second)
	if got2 != fresh {
		t.Errorf("reused preprocessor output differs from fresh:\n--- reused ---\n%s--- fresh ---\n%s", got2, fresh)
	}
}

// The shared base table is immutable through the overlay: #define shadows
// and #undef tombstones a base macro for the current file only.
func TestBaseDefinesOverlay(t *testing.T) {
	base := NewBaseDefines(map[string]string{"N": "1"})
	pp := NewShared(nil, base)
	out := pp.Process("a.c", "#define N 2\nint a = N;\n#undef N\nint b = N;\n")
	if !strings.Contains(out, "int a = 2;") || !strings.Contains(out, "int b = N;") {
		t.Errorf("overlay shadow/undef wrong:\n%s", out)
	}
	pp.Reset()
	out = pp.Process("b.c", "int c = N;\n")
	if !strings.Contains(out, "int c = 1;") {
		t.Errorf("base define not restored after Reset:\n%s", out)
	}
	if !pp.IsDefined("N") {
		t.Error("IsDefined(N) = false for a base define")
	}
}

// MapIncluder misses are typed: IsNotFound distinguishes them from other
// includer failures so fallback logic never masks real errors.
func TestNotFoundError(t *testing.T) {
	_, err := MapIncluder(nil).Include("x.h")
	if err == nil || !IsNotFound(err) {
		t.Fatalf("MapIncluder miss = %v, want NotFoundError", err)
	}
	if want := `include file "x.h" not found`; err.Error() != want {
		t.Errorf("error text = %q, want %q", err.Error(), want)
	}
	if IsNotFound(errIO) {
		t.Error("IsNotFound(io error) = true")
	}
}

var errIO = &stubErr{}

type stubErr struct{}

func (*stubErr) Error() string { return "disk on fire" }
